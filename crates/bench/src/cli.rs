//! Shared command-line parsing for the `experiments` binary.
//!
//! Every subcommand used to re-implement the same flag plumbing inline:
//! the `--input/--format/--prob-model` ingestion trio, the
//! `--edges/--vertices` density rule, the `--thetas` and `--threads`
//! list grammars.  This module is the single home for that logic so the
//! subcommand arms stay thin and the parsing behaviour (and its error
//! wording) cannot drift between them.  Everything returns `Result`
//! rather than exiting, so it is unit-testable; the binary maps errors
//! to its uniform `fail()`.

use nd_datasets::ExternalDataset;
use ugraph::io::EdgeProbabilityModel;
use ugraph::InputFormat;

/// Looks up the value following `flag`.  `Ok(None)` when the flag is
/// absent; an error when the flag is present but dangling without a
/// value (silently ignoring it would run the wrong workload).
pub fn parse_flag(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) => Ok(Some(v.clone())),
            None => Err(format!("{flag} requires a value")),
        },
    }
}

/// Parses a typed flag strictly: an absent flag yields `Ok(None)`, a
/// present-but-unparseable value is a loud error — never a silent fall
/// back to the default (which would benchmark the wrong graph and only
/// surface later as a confusing counts regression in `bench-compare`).
pub fn parse_num_flag<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
) -> Result<Option<T>, String> {
    match parse_flag(args, flag)? {
        None => Ok(None),
        Some(spec) => spec
            .parse::<T>()
            .map(Some)
            .map_err(|_| format!("invalid {flag} value '{spec}'")),
    }
}

/// Parses the shared `--thetas 0.05,0.1,0.5` grid flag.  Grid *shape*
/// validation (sortedness, range) stays with the sweep engine; this
/// only rejects tokens that are not numbers.
pub fn parse_thetas(args: &[String]) -> Result<Option<Vec<f64>>, String> {
    let Some(list) = parse_flag(args, "--thetas")? else {
        return Ok(None);
    };
    let mut thetas = Vec::new();
    for token in list.split(',') {
        match token.trim().parse::<f64>() {
            Ok(t) => thetas.push(t),
            Err(_) => {
                return Err(format!(
                    "invalid --thetas value '{token}' (expected e.g. 0.05,0.1,0.5)"
                ))
            }
        }
    }
    Ok(Some(thetas))
}

/// Parses the `--threads 1,2,4` matrix flag of `parbench`.  `1` is the
/// always-measured sequential baseline, so it is dropped from the list;
/// `0` and non-numbers are rejected.  `Ok(Some(vec![]))` is legitimate
/// (`--threads 1` means baseline only).
pub fn parse_threads(args: &[String]) -> Result<Option<Vec<usize>>, String> {
    let Some(list) = parse_flag(args, "--threads")? else {
        return Ok(None);
    };
    let mut threads = Vec::new();
    for token in list.split(',') {
        match token.trim().parse::<usize>() {
            Ok(0) | Err(_) => {
                return Err(format!(
                    "invalid --threads value '{token}' (expected e.g. 1,2,4)"
                ))
            }
            Ok(1) => {}
            Ok(t) => threads.push(t),
        }
    }
    Ok(Some(threads))
}

/// The derived vertex count of a generated G(n, m) benchmark graph when
/// only `--edges` is given: average degree 50 (the density every
/// committed baseline uses), floored at the smallest graph that can
/// hold a 4-clique.
pub fn derive_vertices(edges: usize) -> usize {
    (edges / 25).max(4)
}

/// The parsed `--input PATH [--format F] [--prob-model M]` ingestion
/// trio, shared verbatim by every subcommand that accepts a file.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestArgs {
    /// The input path (`--input`).
    pub path: String,
    /// The on-disk format (`--format`, default `snap`).
    pub format: InputFormat,
    /// The edge-probability model (`--prob-model`, default `column`).
    pub prob_model: EdgeProbabilityModel,
}

impl IngestArgs {
    /// Parses the trio from a raw argument list.  `Ok(None)` when no
    /// `--input` is present; `--format`/`--prob-model` without
    /// `--input` are rejected (they would otherwise be dead flags whose
    /// typos go unnoticed).
    pub fn from_args(args: &[String]) -> Result<Option<IngestArgs>, String> {
        let path = parse_flag(args, "--input")?;
        let format = parse_flag(args, "--format")?;
        let prob_model = parse_flag(args, "--prob-model")?;
        let Some(path) = path else {
            if format.is_some() || prob_model.is_some() {
                return Err("--format/--prob-model require --input".to_string());
            }
            return Ok(None);
        };
        let format = match format {
            Some(spec) => spec.parse::<InputFormat>()?,
            None => InputFormat::Snap,
        };
        let prob_model = match prob_model {
            Some(spec) => spec.parse::<EdgeProbabilityModel>()?,
            None => EdgeProbabilityModel::Column,
        };
        Ok(Some(IngestArgs {
            path,
            format,
            prob_model,
        }))
    }

    /// The loader-facing dataset (named after the file stem, loaded
    /// through the snapshot cache).
    pub fn to_dataset(&self) -> ExternalDataset {
        ExternalDataset::new(self.path.clone(), self.format, self.prob_model.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn absent_flags_parse_to_none() {
        let a = args(&["parbench", "--seed", "7"]);
        assert_eq!(parse_flag(&a, "--edges").unwrap(), None);
        assert_eq!(parse_num_flag::<u64>(&a, "--edges").unwrap(), None);
        assert_eq!(parse_thetas(&a).unwrap(), None);
        assert_eq!(parse_threads(&a).unwrap(), None);
        assert_eq!(IngestArgs::from_args(&a).unwrap(), None);
    }

    #[test]
    fn dangling_flag_is_an_error_not_a_silent_default() {
        let a = args(&["parbench", "--edges"]);
        assert!(parse_flag(&a, "--edges").unwrap_err().contains("--edges"));
    }

    #[test]
    fn num_flag_rejects_garbage_loudly() {
        let a = args(&["parbench", "--edges", "many"]);
        let err = parse_num_flag::<usize>(&a, "--edges").unwrap_err();
        assert!(err.contains("invalid --edges value 'many'"), "{err}");
    }

    #[test]
    fn thetas_parse_and_reject_bad_tokens() {
        let a = args(&["thetasweep", "--thetas", "0.1,0.5,0.9"]);
        assert_eq!(parse_thetas(&a).unwrap(), Some(vec![0.1, 0.5, 0.9]));
        let bad = args(&["thetasweep", "--thetas", "0.1,x"]);
        assert!(parse_thetas(&bad).unwrap_err().contains("'x'"));
    }

    #[test]
    fn threads_drop_the_baseline_and_reject_zero() {
        let a = args(&["parbench", "--threads", "1,2,4"]);
        assert_eq!(parse_threads(&a).unwrap(), Some(vec![2, 4]));
        let baseline_only = args(&["parbench", "--threads", "1"]);
        assert_eq!(parse_threads(&baseline_only).unwrap(), Some(vec![]));
        let zero = args(&["parbench", "--threads", "0"]);
        assert!(parse_threads(&zero).is_err());
    }

    #[test]
    fn derive_vertices_keeps_average_degree_50() {
        assert_eq!(derive_vertices(50_000), 2_000);
        assert_eq!(derive_vertices(10), 4);
    }

    #[test]
    fn ingest_args_parse_the_full_trio() {
        let a = args(&[
            "parbench",
            "--input",
            "graph.txt",
            "--format",
            "konect",
            "--prob-model",
            "const:0.5",
        ]);
        let ingest = IngestArgs::from_args(&a).unwrap().unwrap();
        assert_eq!(ingest.path, "graph.txt");
        assert_eq!(ingest.format, InputFormat::Konect);
        assert_eq!(ingest.prob_model, EdgeProbabilityModel::Constant(0.5));
        let dataset = ingest.to_dataset();
        assert_eq!(dataset.name, "graph");
    }

    #[test]
    fn ingest_args_default_format_and_model() {
        let a = args(&["parbench", "--input", "g.txt"]);
        let ingest = IngestArgs::from_args(&a).unwrap().unwrap();
        assert_eq!(ingest.format, InputFormat::Snap);
        assert_eq!(ingest.prob_model, EdgeProbabilityModel::Column);
    }

    #[test]
    fn ingest_args_reject_orphaned_modifiers_and_bad_values() {
        let orphan = args(&["parbench", "--format", "snap"]);
        assert!(IngestArgs::from_args(&orphan)
            .unwrap_err()
            .contains("require --input"));
        let bad_format = args(&["parbench", "--input", "g", "--format", "xml"]);
        assert!(IngestArgs::from_args(&bad_format).is_err());
        let bad_model = args(&["parbench", "--input", "g", "--prob-model", "magic"]);
        assert!(IngestArgs::from_args(&bad_model).is_err());
    }
}
