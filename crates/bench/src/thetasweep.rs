//! Threshold-sweep amortization benchmark and experiment driver, at any
//! (r,s) rank.
//!
//! The paper's experiments sweep θ for every figure (fig4–fig8 all
//! re-run the decomposition per threshold), paying the θ-independent
//! support-structure build each time.  `nucleus::local::sweep` amortizes
//! that build across the grid, and [`DecompSweep`] generalizes the same
//! amortization to the (k,η)-core and (k,γ)-truss ranks; this module
//! measures the claim and makes it CI-gateable:
//!
//! * [`run_bench`] builds one sweep index over a grid at the configured
//!   [`Rank`] ([`ThetaSweep`] at the nucleus rank, [`DecompSweep`]
//!   elsewhere), then runs an **independent** decomposition per
//!   threshold (support rebuilt each time, exactly what a caller without
//!   the index would do), asserts every per-threshold result is
//!   bit-identical, and emits a `bench-parallel/v6` JSON report: the
//!   shared `counts`/`source` objects of the parbench schema plus a top-level
//!   `rank` string and a `sweep` object with `support_builds` (gated
//!   `== 1` in CI), per-threshold peel counters, the summed
//!   `dp_calls_total` vs `independent_dp_calls_total`, and the measured
//!   wall-clock amortization (reported, never gated).  The `counts`
//!   object is rank-appropriate: triangles and 4-cliques at the nucleus
//!   rank, triangles only at the truss rank, empty at the core rank.
//!   (v4 reports lacked the `rank` key; `bench-compare` treats them as
//!   nucleus sweeps.)
//! * [`run_table`] runs the nucleus-rank sweep over the synthetic paper
//!   datasets at a pinned context and formats a fully deterministic
//!   table (counters only, no wall times) — the golden-snapshot surface.
//!
//! ```json
//! "rank": "nucleus",
//! "sweep": { "grid": [0.02, 0.05, 0.1, 0.25, 0.5], "grid_size": 5,
//!            "support_builds": 1, "independent_support_builds": 5,
//!            "dp_calls_total": 40705, "independent_dp_calls_total": 40705,
//!            "sweep_s": 0.61, "independent_s": 2.05, "amortization": 3.4,
//!            "per_theta": [ { "theta": 0.02, "dp_calls": 9641, ... } ] }
//! ```
//!
//! The `per_theta` key names are shared by every rank for schema
//! stability; at the core and truss ranks the `theta` values are the η
//! and γ grids.

use std::time::Duration;

use nd_datasets::{ExternalDataset, PaperDataset};
use ugraph::par::Parallelism;
use ugraph::{TriangleIndex, UncertainGraph};

use nucleus::{
    DecompConfig, DecompSweep, Decomposition, LocalConfig, LocalNucleusDecomposition, PeelStats,
    Rank, SweepConfig, ThetaSweep,
};

use crate::parbench::{generate_graph, ingest, json_source_object, IngestError, IngestTimings};
use crate::runner::{format_table, run_with_deadline, ExperimentContext, Timing};

/// The default θ grid of the benchmark: spans the range the paper's
/// figures sweep, anchored on the parbench θ (0.1).
pub const DEFAULT_GRID: [f64; 5] = [0.02, 0.05, 0.1, 0.25, 0.5];

/// Configuration of the threshold-sweep benchmark.
#[derive(Debug, Clone)]
pub struct SweepBenchConfig {
    /// The (r,s) rank to sweep: core, truss or nucleus.
    pub rank: Rank,
    /// Number of vertices of the generated G(n, m) graph.
    pub vertices: usize,
    /// Number of edges of the generated G(n, m) graph.
    pub edges: usize,
    /// RNG seed for structure and probability generation.
    pub seed: u64,
    /// The threshold grid — θ, or η/γ at the other ranks (validated by
    /// the sweep engine).
    pub thetas: Vec<f64>,
    /// Repetitions; best (minimum) wall time is reported.
    pub repeats: usize,
    /// Wall-clock budget per measured phase (sweep / independent loop).
    pub deadline: Duration,
    /// Ingested input overriding the generator (same semantics as
    /// `parbench --input`).
    pub input: Option<ExternalDataset>,
}

impl Default for SweepBenchConfig {
    /// Same graph shape as the parbench default (average degree 50), so
    /// the two reports describe the same workload.
    fn default() -> Self {
        SweepBenchConfig {
            rank: Rank::Nucleus,
            vertices: 2_000,
            edges: 50_000,
            seed: 42,
            thetas: DEFAULT_GRID.to_vec(),
            repeats: 3,
            deadline: Duration::from_secs(600),
            input: None,
        }
    }
}

/// Deterministic counters of one grid point.
#[derive(Debug, Clone, Copy)]
pub struct PerThetaCounters {
    /// The threshold.
    pub theta: f64,
    /// Peel counters of the sweep at this θ (asserted identical to the
    /// independent run's).
    pub stats: PeelStats,
    /// Largest ℓ-nucleusness at this θ.
    pub max_score: u32,
    /// Peeling-time recomputations of the independent per-θ run
    /// (bit-identical to `stats.dp_calls` by the engine contract; both
    /// are recorded so the report states the ≤ relation explicitly).
    pub independent_dp_calls: usize,
}

/// Full report of a θ-sweep benchmark run.
#[derive(Debug, Clone)]
pub struct SweepBenchReport {
    /// The configuration the report was produced with.
    pub config: SweepBenchConfig,
    /// Actual vertex count of the measured graph.
    pub actual_vertices: usize,
    /// Actual edge count of the measured graph.
    pub actual_edges: usize,
    /// Ingestion timings when the graph came from `--input`.
    pub ingest: Option<IngestTimings>,
    /// Number of triangles (the nucleus rank's elements and the truss
    /// rank's cells; `None` at the core rank, whose element and cell
    /// counts are the top-level vertex and edge counts).
    pub num_triangles: Option<usize>,
    /// Number of 4-cliques (nucleus-rank cells; `None` elsewhere).
    pub num_four_cliques: Option<usize>,
    /// `std::thread::available_parallelism()` of the measuring host.
    pub available_parallelism: usize,
    /// Support-structure builds of the sweep (the tentpole number: 1).
    pub support_builds: usize,
    /// Support-structure builds of the independent loop (grid size).
    pub independent_support_builds: usize,
    /// Per-θ counters, in grid order.
    pub per_theta: Vec<PerThetaCounters>,
    /// Best-of-repeats wall seconds of the whole sweep (one support
    /// build + every peel).
    pub sweep_s: f64,
    /// Best-of-repeats wall seconds of the independent per-θ loop.
    pub independent_s: f64,
    /// `true` when a measured phase blew its wall-clock budget.
    pub deadline_exceeded: bool,
}

impl SweepBenchReport {
    /// Sum of peeling-time recomputations across the grid (sweep side).
    pub fn dp_calls_total(&self) -> usize {
        self.per_theta.iter().map(|p| p.stats.dp_calls).sum()
    }

    /// Sum of the independent runs' recomputations.
    pub fn independent_dp_calls_total(&self) -> usize {
        self.per_theta.iter().map(|p| p.independent_dp_calls).sum()
    }

    /// Wall-clock amortization: independent-loop time over sweep time
    /// (> 1 means the shared support build paid off).
    pub fn amortization(&self) -> f64 {
        self.independent_s / self.sweep_s.max(1e-9)
    }

    /// The rank-appropriate `counts` JSON object (matching the v3
    /// parbench keys where the quantities exist at this rank).
    fn counts_json(&self) -> String {
        match (self.num_triangles, self.num_four_cliques) {
            (Some(t), Some(c)) => format!("{{ \"triangles\": {t}, \"four_cliques\": {c} }}"),
            (Some(t), None) => format!("{{ \"triangles\": {t} }}"),
            _ => "{ }".to_string(),
        }
    }

    /// Serializes the report to the `bench-parallel/v6` JSON schema.
    pub fn to_json(&self) -> String {
        let grid: Vec<String> = self
            .per_theta
            .iter()
            .map(|p| format!("{:.6}", p.theta))
            .collect();
        let rows: Vec<String> = self
            .per_theta
            .iter()
            .map(|p| {
                format!(
                    "      {{ \"theta\": {:.6}, \"dp_calls\": {}, \"recompute_skips\": {}, \
                     \"buckets_touched\": {}, \"peak_scratch_bytes\": {}, \
                     \"peak_rss_bytes\": {}, \"max_score\": {}, \
                     \"independent_dp_calls\": {} }}",
                    p.theta,
                    p.stats.dp_calls,
                    p.stats.recompute_skips,
                    p.stats.buckets_touched,
                    p.stats.peak_scratch_bytes,
                    p.stats.peak_rss_bytes,
                    p.max_score,
                    p.independent_dp_calls
                )
            })
            .collect();
        format!(
            "{{\n  \"schema\": \"bench-parallel/v6\",\n  \"rank\": \"{}\",\n  \
             \"source\": {},\n  \
             \"vertices\": {},\n  \"edges\": {},\n  \"seed\": {},\n  \"repeats\": {},\n  \
             \"available_parallelism\": {},\n  \"counts\": {},\n  \
             \"sweep\": {{\n    \"grid\": [ {} ],\n    \
             \"grid_size\": {},\n    \"support_builds\": {},\n    \
             \"independent_support_builds\": {},\n    \"dp_calls_total\": {},\n    \
             \"independent_dp_calls_total\": {},\n    \"sweep_s\": {:.6},\n    \
             \"independent_s\": {:.6},\n    \"amortization\": {:.3},\n    \
             \"deadline_exceeded\": {},\n    \"per_theta\": [\n{}\n    ]\n  }}\n}}\n",
            self.config.rank,
            json_source_object(
                self.config.input.as_ref(),
                self.ingest.as_ref(),
                self.config.vertices,
                self.config.edges,
                self.config.seed,
            ),
            self.actual_vertices,
            self.actual_edges,
            self.config.seed,
            self.config.repeats,
            self.available_parallelism,
            self.counts_json(),
            grid.join(", "),
            self.per_theta.len(),
            self.support_builds,
            self.independent_support_builds,
            self.dp_calls_total(),
            self.independent_dp_calls_total(),
            self.sweep_s,
            self.independent_s,
            self.amortization(),
            self.deadline_exceeded,
            rows.join(",\n")
        )
    }

    /// Human-readable table of the same measurements.
    pub fn format(&self) -> String {
        let mut rows = Vec::new();
        for p in &self.per_theta {
            rows.push(vec![
                format!("{:.3}", p.theta),
                p.stats.dp_calls.to_string(),
                p.stats.recompute_skips.to_string(),
                p.stats.buckets_touched.to_string(),
                p.stats.peak_scratch_bytes.to_string(),
                p.max_score.to_string(),
            ]);
        }
        let counts = match (self.num_triangles, self.num_four_cliques) {
            (Some(t), Some(c)) => format!(", {t} triangles, {c} 4-cliques"),
            (Some(t), None) => format!(", {t} triangles"),
            _ => String::new(),
        };
        format!(
            "{} sweep bench — {} vertices, {} edges (seed {}){}, host parallelism {}\n\
             support builds: {} (sweep) vs {} (independent); dp_calls {} vs {}\n\
             wall: sweep {:.3}s vs independent {:.3}s ({:.2}x amortization){}\n{}",
            self.config.rank,
            self.actual_vertices,
            self.actual_edges,
            self.config.seed,
            counts,
            self.available_parallelism,
            self.support_builds,
            self.independent_support_builds,
            self.dp_calls_total(),
            self.independent_dp_calls_total(),
            self.sweep_s,
            self.independent_s,
            self.amortization(),
            if self.deadline_exceeded {
                " [DEADLINE EXCEEDED]"
            } else {
                ""
            },
            format_table(
                &[
                    self.config.rank.threshold_name(),
                    "dp_calls",
                    "skips",
                    "buckets",
                    "scratch_B",
                    "max_score"
                ],
                &rows,
            )
        )
    }
}

/// Runs the benchmark at the configured rank: best-of-`repeats` sweep
/// builds, then best-of-`repeats` independent per-threshold loops,
/// verifying bit-identity of every per-threshold result on the way.
///
/// Panics if the sweep and an independent decomposition disagree on a
/// single score, initial score, method count or perf counter — the
/// benchmark doubles as a CI-enforced differential check at real scale.
pub fn run_bench(config: &SweepBenchConfig) -> Result<SweepBenchReport, IngestError> {
    let (graph, ingest_timings) = match &config.input {
        Some(input) => ingest(input)?,
        None => (
            generate_graph(config.vertices, config.edges, config.seed),
            None,
        ),
    };
    Ok(match config.rank {
        Rank::Nucleus => run_bench_nucleus(config, &graph, ingest_timings),
        rank => run_bench_generic(config, rank, &graph, ingest_timings),
    })
}

/// The nucleus-rank benchmark: [`ThetaSweep`] vs independent
/// [`LocalNucleusDecomposition`] runs (the richest per-point checks,
/// including method counts and clique counts).
fn run_bench_nucleus(
    config: &SweepBenchConfig,
    graph: &UncertainGraph,
    ingest_timings: Option<IngestTimings>,
) -> SweepBenchReport {
    let sweep_config = SweepConfig::exact(config.thetas.clone());
    let repeats = config.repeats.max(1);

    let mut sweep_s = f64::INFINITY;
    let mut index = None;
    let (_, _, sweep_exceeded) = run_with_deadline(config.deadline, || {
        for _ in 0..repeats {
            let (built, t) = Timing::measure(|| {
                ThetaSweep::compute(graph, &sweep_config).expect("valid sweep config")
            });
            sweep_s = sweep_s.min(t.seconds());
            index = Some(built);
        }
    });
    let index = index.expect("at least one repeat ran");
    assert_eq!(index.support_builds(), 1, "sweep must build support once");

    let mut independent_s = f64::INFINITY;
    let mut independents = None;
    let (_, _, indep_exceeded) = run_with_deadline(config.deadline, || {
        for _ in 0..repeats {
            let (solo, t) = Timing::measure(|| {
                config
                    .thetas
                    .iter()
                    .map(|&theta| {
                        LocalNucleusDecomposition::compute(graph, &LocalConfig::exact(theta))
                            .expect("valid config")
                    })
                    .collect::<Vec<_>>()
            });
            independent_s = independent_s.min(t.seconds());
            independents = Some(solo);
        }
    });
    let independents = independents.expect("at least one repeat ran");

    let per_theta: Vec<PerThetaCounters> = config
        .thetas
        .iter()
        .zip(&independents)
        .map(|(&theta, solo)| {
            assert_eq!(
                index.scores_at(theta).expect("theta is a grid point"),
                solo.scores(),
                "sweep diverged from the independent decomposition at theta {theta}"
            );
            assert_eq!(
                index.initial_scores_at(theta).expect("grid point"),
                solo.initial_scores()
            );
            assert_eq!(
                index.method_counts_at(theta).expect("grid point"),
                solo.method_counts()
            );
            let stats = *index.peel_stats_at(theta).expect("grid point");
            assert_eq!(&stats, solo.peel_stats(), "perf counters diverged");
            PerThetaCounters {
                theta,
                stats,
                max_score: index.max_score_at(theta).expect("grid point"),
                independent_dp_calls: solo.peel_stats().dp_calls,
            }
        })
        .collect();

    SweepBenchReport {
        config: config.clone(),
        actual_vertices: graph.num_vertices(),
        actual_edges: graph.num_edges(),
        ingest: ingest_timings,
        num_triangles: Some(index.num_triangles()),
        num_four_cliques: Some(index.support().num_cliques()),
        available_parallelism: Parallelism::Auto.num_threads(),
        support_builds: index.support_builds(),
        independent_support_builds: config.thetas.len(),
        per_theta,
        sweep_s,
        independent_s,
        deadline_exceeded: sweep_exceeded || indep_exceeded,
    }
}

/// The core/truss-rank benchmark: [`DecompSweep`] vs independent
/// [`Decomposition::compute`] runs per grid point.
fn run_bench_generic(
    config: &SweepBenchConfig,
    rank: Rank,
    graph: &UncertainGraph,
    ingest_timings: Option<IngestTimings>,
) -> SweepBenchReport {
    let sweep_config = SweepConfig::exact(config.thetas.clone()).with_rank(rank);
    let repeats = config.repeats.max(1);

    let mut sweep_s = f64::INFINITY;
    let mut index = None;
    let (_, _, sweep_exceeded) = run_with_deadline(config.deadline, || {
        for _ in 0..repeats {
            let (built, t) = Timing::measure(|| {
                DecompSweep::compute(graph, &sweep_config).expect("valid sweep config")
            });
            sweep_s = sweep_s.min(t.seconds());
            index = Some(built);
        }
    });
    let index = index.expect("at least one repeat ran");
    assert_eq!(index.support_builds(), 1, "sweep must build support once");

    let mut independent_s = f64::INFINITY;
    let mut independents = None;
    let (_, _, indep_exceeded) = run_with_deadline(config.deadline, || {
        for _ in 0..repeats {
            let (solo, t) = Timing::measure(|| {
                config
                    .thetas
                    .iter()
                    .map(|&threshold| {
                        let point = match rank {
                            Rank::Core => DecompConfig::core(threshold),
                            Rank::Truss => DecompConfig::truss(threshold),
                            Rank::Nucleus => unreachable!("nucleus uses run_bench_nucleus"),
                        };
                        Decomposition::compute(graph, &point).expect("valid config")
                    })
                    .collect::<Vec<_>>()
            });
            independent_s = independent_s.min(t.seconds());
            independents = Some(solo);
        }
    });
    let independents = independents.expect("at least one repeat ran");

    let stats_grid = index.peel_stats();
    let per_theta: Vec<PerThetaCounters> = config
        .thetas
        .iter()
        .enumerate()
        .zip(&independents)
        .map(|((gi, &theta), solo)| {
            assert_eq!(
                index.scores_at_index(gi),
                solo.scores(),
                "{rank} sweep diverged from the independent decomposition at threshold {theta}"
            );
            assert_eq!(
                index.initial_scores_at_index(gi),
                solo.initial_scores(),
                "{rank} initial scores diverged at threshold {theta}"
            );
            let stats = stats_grid[gi];
            assert_eq!(&stats, solo.peel_stats(), "perf counters diverged");
            PerThetaCounters {
                theta,
                stats,
                max_score: index.scores_at_index(gi).iter().copied().max().unwrap_or(0),
                independent_dp_calls: solo.peel_stats().dp_calls,
            }
        })
        .collect();

    // The cell counts the `counts` object can carry at this rank: the
    // truss rank's cells are triangles; the core rank's elements and
    // cells (vertices, edges) are already top-level report fields.
    let num_triangles = match rank {
        Rank::Truss => Some(TriangleIndex::build(graph).len()),
        _ => None,
    };

    SweepBenchReport {
        config: config.clone(),
        actual_vertices: graph.num_vertices(),
        actual_edges: graph.num_edges(),
        ingest: ingest_timings,
        num_triangles,
        num_four_cliques: None,
        available_parallelism: Parallelism::Auto.num_threads(),
        support_builds: index.support_builds(),
        independent_support_builds: config.thetas.len(),
        per_theta,
        sweep_s,
        independent_s,
        deadline_exceeded: sweep_exceeded || indep_exceeded,
    }
}

/// One row of the deterministic sweep table.
#[derive(Debug, Clone)]
pub struct SweepTableRow {
    /// Dataset label.
    pub dataset: String,
    /// The threshold.
    pub theta: f64,
    /// Largest ℓ-nucleusness at this θ.
    pub max_score: u32,
    /// Number of maximal ℓ-(1,θ)-nuclei.
    pub nuclei_at_1: usize,
    /// Peel counters at this θ.
    pub stats: PeelStats,
}

/// Deterministic sweep summary over the synthetic datasets — the golden
/// snapshot surface (no wall-clock fields).
#[derive(Debug, Clone)]
pub struct SweepTable {
    /// Per-dataset graph shape: label, triangles, 4-cliques.
    pub datasets: Vec<(String, usize, usize)>,
    /// Per-(dataset, θ) counters, grid-major within each dataset.
    pub rows: Vec<SweepTableRow>,
    /// The grid every dataset was swept over.
    pub thetas: Vec<f64>,
}

impl SweepTable {
    /// Renders the deterministic table.
    pub fn format(&self) -> String {
        let mut rows = Vec::new();
        for r in &self.rows {
            rows.push(vec![
                r.dataset.clone(),
                format!("{:.2}", r.theta),
                r.max_score.to_string(),
                r.nuclei_at_1.to_string(),
                r.stats.dp_calls.to_string(),
                r.stats.recompute_skips.to_string(),
                r.stats.buckets_touched.to_string(),
            ]);
        }
        let shapes: Vec<String> = self
            .datasets
            .iter()
            .map(|(name, tris, cliques)| format!("{name}: {tris} triangles, {cliques} 4-cliques"))
            .collect();
        format!(
            "theta sweep (one support build per dataset, {} grid points)\n{}\n{}",
            self.thetas.len(),
            shapes.join("\n"),
            format_table(
                &["dataset", "theta", "kmax", "nuclei@1", "dp_calls", "skips", "buckets"],
                &rows,
            )
        )
    }
}

/// Sweeps every dataset of `datasets` over `thetas` under the pinned
/// experiment context, verifying each grid point against an independent
/// decomposition (the sweep's differential contract, re-checked on the
/// synthetic data the goldens pin).
pub fn run_table(ctx: &ExperimentContext, datasets: &[PaperDataset], thetas: &[f64]) -> SweepTable {
    let sweep = ThetaSweep::new(SweepConfig::exact(thetas.to_vec())).expect("valid grid");
    let mut shapes = Vec::new();
    let mut rows = Vec::new();
    for &dataset in datasets {
        let graph = ctx.dataset(dataset);
        let name = ctx.dataset_name(dataset);
        let index = sweep.run(&graph).expect("valid sweep");
        assert_eq!(index.support_builds(), 1);
        assert!(
            index.is_monotone_in_theta(),
            "{name}: sweep rows must be non-increasing in theta"
        );
        shapes.push((
            name.clone(),
            index.num_triangles(),
            index.support().num_cliques(),
        ));
        for &theta in thetas {
            let solo = LocalNucleusDecomposition::compute(&graph, &LocalConfig::exact(theta))
                .expect("valid config");
            assert_eq!(
                index.scores_at(theta).expect("grid point"),
                solo.scores(),
                "{name}: sweep diverged at theta {theta}"
            );
            rows.push(SweepTableRow {
                dataset: name.clone(),
                theta,
                max_score: index.max_score_at(theta).expect("grid point"),
                nuclei_at_1: index
                    .k_nuclei_at(&graph, theta, 1)
                    .expect("grid point")
                    .len(),
                stats: *index.peel_stats_at(theta).expect("grid point"),
            });
        }
    }
    SweepTable {
        datasets: shapes,
        rows,
        thetas: thetas.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_datasets::Scale;

    fn tiny_config() -> SweepBenchConfig {
        SweepBenchConfig {
            rank: Rank::Nucleus,
            vertices: 60,
            edges: 400,
            seed: 7,
            thetas: vec![0.05, 0.1, 0.3],
            repeats: 1,
            deadline: Duration::from_secs(120),
            input: None,
        }
    }

    #[test]
    fn report_is_consistent_and_support_built_once() {
        let report = run_bench(&tiny_config()).unwrap();
        assert_eq!(report.support_builds, 1);
        assert_eq!(report.independent_support_builds, 3);
        assert_eq!(report.per_theta.len(), 3);
        assert!(report.num_triangles.unwrap() > 0);
        assert!(!report.deadline_exceeded);
        // Same engine per θ on both sides: the sums are equal, so the ≤
        // gate holds with slack zero.
        assert_eq!(report.dp_calls_total(), report.independent_dp_calls_total());
        assert!(report.amortization() > 0.0);
        // Monotone max scores across the grid.
        for w in report.per_theta.windows(2) {
            assert!(w[1].max_score <= w[0].max_score);
        }
    }

    #[test]
    fn json_has_v6_schema_and_parses_shape() {
        let report = run_bench(&tiny_config()).unwrap();
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"bench-parallel/v6\""));
        assert!(json.contains("\"rank\": \"nucleus\""));
        assert!(json.contains("\"kind\": \"generated\""));
        let doc = crate::json::Json::parse(&json).expect("report JSON parses");
        assert_eq!(
            doc.path(&["sweep", "support_builds"])
                .and_then(crate::json::Json::as_f64),
            Some(1.0)
        );
        assert_eq!(
            doc.path(&["sweep", "grid_size"])
                .and_then(crate::json::Json::as_f64),
            Some(3.0)
        );
        assert_eq!(
            doc.path(&["sweep", "dp_calls_total"])
                .and_then(crate::json::Json::as_f64),
            Some(report.dp_calls_total() as f64)
        );
        assert_eq!(
            doc.path(&["counts", "triangles"])
                .and_then(crate::json::Json::as_f64),
            Some(report.num_triangles.unwrap() as f64)
        );
        // Every per-theta row carries the RSS probe next to the
        // deterministic scratch peak.
        assert!(json.contains("\"peak_rss_bytes\""));
    }

    #[test]
    fn counters_are_deterministic_across_runs() {
        let a = run_bench(&tiny_config()).unwrap();
        let b = run_bench(&tiny_config()).unwrap();
        assert_eq!(a.dp_calls_total(), b.dp_calls_total());
        for (x, y) in a.per_theta.iter().zip(&b.per_theta) {
            assert_eq!(x.stats, y.stats);
            assert_eq!(x.max_score, y.max_score);
        }
    }

    #[test]
    fn table_mode_is_deterministic_and_formats() {
        let ctx = ExperimentContext::new(Scale::Tiny, 42);
        let datasets = [PaperDataset::Krogan, PaperDataset::Flickr];
        let a = run_table(&ctx, &datasets, &[0.1, 0.4]);
        let b = run_table(&ctx, &datasets, &[0.1, 0.4]);
        assert_eq!(a.format(), b.format());
        assert_eq!(a.rows.len(), 4);
        assert!(a.format().contains("dataset"));
        assert!(a.format().contains("krogan"));
    }

    #[test]
    fn input_mode_records_provenance() {
        use ugraph::io::EdgeProbabilityModel;
        use ugraph::InputFormat;

        let dir = std::env::temp_dir().join("thetasweep_input_mode_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.txt");
        ugraph::io::write_edge_list_file(&generate_graph(60, 400, 7), &path).unwrap();

        let mut config = tiny_config();
        config.input = Some(ExternalDataset::new(
            &path,
            InputFormat::Snap,
            EdgeProbabilityModel::Column,
        ));
        let report = run_bench(&config).unwrap();
        assert!(report.ingest.is_some());
        assert_eq!(report.actual_edges, 400);
        let json = report.to_json();
        assert!(json.contains("\"kind\": \"file\""));
        assert!(json.contains("\"schema\": \"bench-parallel/v6\""));
        assert!(report.format().contains("amortization"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truss_rank_sweeps_with_one_support_build() {
        let mut config = tiny_config();
        config.rank = Rank::Truss;
        let report = run_bench(&config).unwrap();
        assert_eq!(report.support_builds, 1);
        assert_eq!(report.per_theta.len(), 3);
        // The truss rank peels edges; triangles are the cells.
        assert_eq!(report.per_theta.len(), config.thetas.len());
        assert!(report.num_triangles.unwrap() > 0);
        assert_eq!(report.num_four_cliques, None);
        assert_eq!(report.dp_calls_total(), report.independent_dp_calls_total());
        for w in report.per_theta.windows(2) {
            assert!(w[1].max_score <= w[0].max_score);
        }
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"bench-parallel/v6\""));
        assert!(json.contains("\"rank\": \"truss\""));
        assert!(json.contains("\"triangles\""));
        assert!(!json.contains("four_cliques"));
        let doc = crate::json::Json::parse(&json).expect("report JSON parses");
        assert_eq!(
            doc.path(&["sweep", "support_builds"])
                .and_then(crate::json::Json::as_f64),
            Some(1.0)
        );
        assert!(report.format().starts_with("truss sweep bench"));
        assert!(report.format().contains("gamma"));
    }

    #[test]
    fn core_rank_sweeps_with_empty_counts() {
        let mut config = tiny_config();
        config.rank = Rank::Core;
        let report = run_bench(&config).unwrap();
        assert_eq!(report.support_builds, 1);
        assert_eq!(report.num_triangles, None);
        assert_eq!(report.num_four_cliques, None);
        let json = report.to_json();
        assert!(json.contains("\"rank\": \"core\""));
        assert!(json.contains("\"counts\": { }"));
        let doc = crate::json::Json::parse(&json).expect("report JSON parses");
        assert_eq!(
            doc.path(&["sweep", "grid_size"])
                .and_then(crate::json::Json::as_f64),
            Some(3.0)
        );
        assert!(report.format().contains("eta"));
    }
}
