//! The declarative scenario registry behind `experiments matrix`.
//!
//! Every workload the `experiments` binary can run — the five bench
//! drivers and the nine paper tables/figures — is *declared* here as a
//! [`Spec`] instead of hand-wired flag plumbing.  The
//! registry is the union of two sources:
//!
//! * **builtins** — one spec per existing subcommand, embedded in the
//!   binary so the matrix always covers the full workload surface even
//!   with no scenario files on disk;
//! * **scenario files** — `crates/bench/scenarios/*.toml`, loaded in
//!   sorted order, so adding a scenario is a data change, not a code
//!   change (probe-rs's target registry is the model).
//!
//! Scenario names are unique across both sources; a collision is a
//! typed [`SpecError::DuplicateName`].
//! Execution ([`run`]) drives the existing driver entry points and
//! judges declared counter expectations with the same
//! [`Gate`](crate::compare::Gate) machinery `bench-compare` uses; the
//! matrix report ([`matrix`]) is one `bench-matrix/v1` JSON document
//! that `bench-compare` gates at tolerance 0 in CI.

pub mod matrix;
pub mod run;
pub mod spec;

use std::path::{Path, PathBuf};

use spec::{DatasetSpec, ParsedSpec, Spec, SpecError};

/// Where a scenario came from.
#[derive(Debug, Clone, PartialEq)]
pub enum Origin {
    /// Embedded in the binary, mirroring an `experiments` subcommand.
    Builtin,
    /// Loaded from a `scenarios/*.toml` file.
    File(PathBuf),
}

impl std::fmt::Display for Origin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Origin::Builtin => write!(f, "builtin"),
            // Just the file name: stable across checkouts, so the
            // dry-run listing stays golden-testable.
            Origin::File(path) => match path.file_name() {
                Some(name) => write!(f, "{}", name.to_string_lossy()),
                None => write!(f, "{}", path.display()),
            },
        }
    }
}

/// One registered scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The validated spec.
    pub spec: Spec,
    /// Builtin or the file it was loaded from.
    pub origin: Origin,
}

/// The full scenario collection, sorted by name.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    scenarios: Vec<Scenario>,
}

/// The embedded scenarios: every existing `experiments` subcommand
/// workload, smoke-sized so the whole matrix runs in CI wall-clock.
/// Expectations carry the invariants the per-family CI gates used to
/// assert in python: one shared support build per sweep, repair never
/// out-working a rebuild, a clean protocol run for the server.
const BUILTINS: &[&str] = &[
    // -- bench drivers -------------------------------------------------
    "name = \"parbench-smoke\"\nworkload = \"parbench\"\ntags = [\"bench\", \"parallel\"]\n\n\
     [dataset]\nkind = \"generated\"\nedges = 4000\nseed = 42\n\n\
     [params]\nrepeats = 1\nthreads = [2]\n",
    "name = \"thetasweep-core-smoke\"\nworkload = \"thetasweep\"\ntags = [\"bench\", \"sweep\"]\n\n\
     [dataset]\nkind = \"generated\"\nedges = 4000\nseed = 42\n\n\
     [params]\nrank = \"core\"\nthetas = [0.05, 0.1, 0.3]\nrepeats = 1\n\n\
     [expect]\n\"sweep.support_builds\" = 1\n",
    "name = \"thetasweep-truss-smoke\"\nworkload = \"thetasweep\"\ntags = [\"bench\", \"sweep\"]\n\n\
     [dataset]\nkind = \"generated\"\nedges = 4000\nseed = 42\n\n\
     [params]\nrank = \"truss\"\nthetas = [0.05, 0.1, 0.3]\nrepeats = 1\n\n\
     [expect]\n\"sweep.support_builds\" = 1\n",
    "name = \"thetasweep-nucleus-smoke\"\nworkload = \"thetasweep\"\ntags = [\"bench\", \"sweep\"]\n\n\
     [dataset]\nkind = \"generated\"\nedges = 4000\nseed = 42\n\n\
     [params]\nrank = \"nucleus\"\nthetas = [0.05, 0.1, 0.3]\nrepeats = 1\n\n\
     [expect]\n\"sweep.support_builds\" = 1\n",
    "name = \"updates-truss-smoke\"\nworkload = \"updates\"\ntags = [\"bench\", \"updates\"]\n\n\
     [dataset]\nkind = \"generated\"\nedges = 4000\nseed = 42\n\n\
     [params]\nrank = \"truss\"\nthetas = [0.05, 0.1, 0.3]\nbatch = 16\n\n\
     [expect]\n\"repair.dp_calls_excess\" = 0\n",
    "name = \"serve-smoke\"\nworkload = \"serve\"\ntags = [\"bench\", \"serve\"]\n\n\
     [dataset]\nkind = \"generated\"\nedges = 4000\nseed = 42\n\n\
     [params]\nthetas = [0.1, 0.3]\ncache = 32\n\n\
     # The oneshot script deliberately probes six request error paths.\n\
     [expect]\n\"stats.protocol_errors\" = 0\n\"stats.request_errors\" = 6\n",
    "name = \"million-smoke\"\nworkload = \"million\"\ntags = [\"bench\", \"million\"]\n\n\
     [dataset]\nkind = \"ba\"\nvertices = 2005\nattach = 5\nseed = 42\n\n\
     [params]\nthetas = [0.1, 0.5]\npool = 2\nchunk_edges = 4096\n\n\
     [expect]\n\"sweep.support_builds\" = 1\n",
    // -- paper tables and figures --------------------------------------
    "name = \"table1-tiny\"\nworkload = \"table1\"\ntags = [\"paper\", \"table\"]\n\n\
     [dataset]\nkind = \"paper\"\nscale = \"tiny\"\nseed = 42\n",
    "name = \"table2-tiny\"\nworkload = \"table2\"\ntags = [\"paper\", \"table\"]\n\n\
     [dataset]\nkind = \"paper\"\nscale = \"tiny\"\nseed = 42\n",
    "name = \"table3-tiny\"\nworkload = \"table3\"\ntags = [\"paper\", \"table\"]\n\n\
     [dataset]\nkind = \"paper\"\nscale = \"tiny\"\nseed = 42\n",
    "name = \"fig4-tiny\"\nworkload = \"fig4\"\ntags = [\"paper\", \"figure\"]\n\n\
     [dataset]\nkind = \"paper\"\nscale = \"tiny\"\nseed = 42\n",
    "name = \"fig5-tiny\"\nworkload = \"fig5\"\ntags = [\"paper\", \"figure\"]\n\n\
     [dataset]\nkind = \"paper\"\nscale = \"tiny\"\nseed = 42\n",
    "name = \"fig6-tiny\"\nworkload = \"fig6\"\ntags = [\"paper\", \"figure\"]\n\n\
     [dataset]\nkind = \"paper\"\nscale = \"tiny\"\nseed = 42\n",
    "name = \"fig7-tiny\"\nworkload = \"fig7\"\ntags = [\"paper\", \"figure\"]\n\n\
     [dataset]\nkind = \"paper\"\nscale = \"tiny\"\nseed = 42\n",
    "name = \"fig8-tiny\"\nworkload = \"fig8\"\ntags = [\"paper\", \"figure\"]\n\n\
     [dataset]\nkind = \"paper\"\nscale = \"tiny\"\nseed = 42\n",
    "name = \"ablation-tiny\"\nworkload = \"ablation\"\ntags = [\"paper\", \"ablation\"]\n\n\
     [dataset]\nkind = \"paper\"\nscale = \"tiny\"\nseed = 42\n",
];

impl Registry {
    /// The embedded scenarios only (what the matrix falls back to when
    /// no scenarios directory exists).
    pub fn builtin() -> Registry {
        let mut registry = Registry::default();
        for text in BUILTINS {
            let parsed = spec::parse(text).expect("builtin scenario specs parse");
            registry
                .add(parsed, Origin::Builtin)
                .expect("builtin scenario names are unique");
        }
        registry
    }

    /// Builtins plus every `*.toml` under `dir`, loaded in sorted file
    /// order.  A missing directory is not an error — the builtins alone
    /// are a valid registry (and the matrix total-count gate in
    /// `BENCH_matrix.json` catches an accidentally dropped directory).
    pub fn load(dir: &Path) -> Result<Registry, SpecError> {
        let mut registry = Registry::builtin();
        let entries = match std::fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(registry),
            Err(e) => {
                return Err(SpecError::Io {
                    path: dir.to_path_buf(),
                    message: e.to_string(),
                })
            }
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|path| path.extension().is_some_and(|ext| ext == "toml"))
            .collect();
        paths.sort();
        for path in paths {
            let text = std::fs::read_to_string(&path).map_err(|e| SpecError::Io {
                path: path.clone(),
                message: e.to_string(),
            })?;
            let mut parsed = spec::parse(&text).map_err(|e| annotate_file(e, &path))?;
            resolve_relative_input(&mut parsed.spec, &path);
            registry
                .add(parsed, Origin::File(path.clone()))
                .map_err(|e| annotate_file(e, &path))?;
        }
        Ok(registry)
    }

    fn add(&mut self, parsed: ParsedSpec, origin: Origin) -> Result<(), SpecError> {
        if self
            .scenarios
            .iter()
            .any(|s| s.spec.name == parsed.spec.name)
        {
            return Err(SpecError::DuplicateName {
                line: parsed.name_line,
                name: parsed.spec.name,
            });
        }
        let scenario = Scenario {
            spec: parsed.spec,
            origin,
        };
        let pos = self
            .scenarios
            .partition_point(|s| s.spec.name < scenario.spec.name);
        self.scenarios.insert(pos, scenario);
        Ok(())
    }

    /// Every scenario, sorted by name.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// The scenarios selected by `--only` names and `--tag` filters.
    /// Both empty selects everything; an unknown `--only` name is an
    /// error (a typo would otherwise silently skip the scenario).
    pub fn select(&self, only: &[String], tag: Option<&str>) -> Result<Vec<&Scenario>, String> {
        for name in only {
            if !self.scenarios.iter().any(|s| &s.spec.name == name) {
                return Err(format!("unknown scenario '{name}'"));
            }
        }
        Ok(self
            .scenarios
            .iter()
            .filter(|s| only.is_empty() || only.contains(&s.spec.name))
            .filter(|s| tag.map_or(true, |t| s.spec.tags.iter().any(|have| have == t)))
            .collect())
    }
}

/// Attaches the file path to errors surfaced while loading it, so a
/// broken scenario file names itself.
fn annotate_file(e: SpecError, path: &Path) -> SpecError {
    SpecError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

/// Rewrites a relative `kind = "file"` dataset path to be relative to
/// the spec file's directory, so scenario files work from any cwd.
fn resolve_relative_input(spec: &mut Spec, spec_path: &Path) {
    if let DatasetSpec::File { path, .. } = &mut spec.dataset {
        if !Path::new(path.as_str()).is_absolute() {
            if let Some(parent) = spec_path.parent() {
                *path = parent.join(path.as_str()).to_string_lossy().into_owned();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec::Workload;

    #[test]
    fn builtins_cover_every_workload() {
        let registry = Registry::builtin();
        for workload in Workload::ALL {
            assert!(
                registry
                    .scenarios()
                    .iter()
                    .any(|s| s.spec.workload == workload),
                "no builtin scenario for workload {workload}"
            );
        }
    }

    #[test]
    fn scenarios_come_out_sorted_by_name() {
        let registry = Registry::builtin();
        let names: Vec<&str> = registry
            .scenarios()
            .iter()
            .map(|s| s.spec.name.as_str())
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn select_filters_by_name_and_tag_and_rejects_typos() {
        let registry = Registry::builtin();
        let all = registry.select(&[], None).unwrap();
        assert_eq!(all.len(), registry.scenarios().len());
        let only = registry
            .select(&["parbench-smoke".to_string()], None)
            .unwrap();
        assert_eq!(only.len(), 1);
        assert_eq!(only[0].spec.name, "parbench-smoke");
        let sweeps = registry.select(&[], Some("sweep")).unwrap();
        assert_eq!(sweeps.len(), 3);
        let err = registry.select(&["nope".to_string()], None).unwrap_err();
        assert!(err.contains("unknown scenario 'nope'"), "{err}");
    }

    #[test]
    fn duplicate_names_across_sources_are_refused() {
        let dir =
            std::env::temp_dir().join(format!("nd_bench_registry_dup_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("dup.toml"),
            "name = \"parbench-smoke\"\nworkload = \"parbench\"\n\n\
             [dataset]\nkind = \"generated\"\nedges = 100\n",
        )
        .unwrap();
        let err = Registry::load(&dir).unwrap_err();
        let text = err.to_string();
        assert!(
            text.contains("duplicate scenario name 'parbench-smoke'"),
            "{text}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_scenarios_dir_falls_back_to_builtins() {
        let registry = Registry::load(Path::new("/nonexistent/nd-bench-scenarios")).unwrap();
        assert_eq!(
            registry.scenarios().len(),
            Registry::builtin().scenarios().len()
        );
    }

    #[test]
    fn relative_file_paths_resolve_against_the_spec_dir() {
        let dir =
            std::env::temp_dir().join(format!("nd_bench_registry_rel_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("file.toml"),
            "name = \"zz-file\"\nworkload = \"parbench\"\n\n\
             [dataset]\nkind = \"file\"\npath = \"data/g.txt\"\nprob_model = \"const:0.5\"\n",
        )
        .unwrap();
        let registry = Registry::load(&dir).unwrap();
        let scenario = registry
            .scenarios()
            .iter()
            .find(|s| s.spec.name == "zz-file")
            .unwrap();
        match &scenario.spec.dataset {
            DatasetSpec::File { path, .. } => {
                assert_eq!(Path::new(path), dir.join("data/g.txt"));
            }
            other => panic!("expected a file dataset, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
