//! Scenario execution: one dispatch path from a validated
//! [`Spec`] to the existing driver entry points.
//!
//! The `experiments` binary's subcommand arms and the matrix runner
//! both go through here, so a registry-driven run is *the same run* as
//! a direct subcommand invocation — the differential tests pin that
//! bit-identically (counters, counts, method_counts).
//!
//! After a driver finishes, the deterministic counters are extracted
//! from its own JSON report (never from wall-clock fields —
//! `peak_rss_bytes`, `*_s` timings and the reload/mmap speedups are
//! deliberately absent from the probe tables below) and the spec's
//! declared expectations are judged with the same
//! [`Gate`](crate::compare::Gate) semantics `bench-compare` applies.

use super::spec::{DatasetSpec, Spec, Workload};
use crate::json::Json;
use crate::runner::ExperimentContext;
use crate::{
    ablation, fig4, fig5, fig6, fig7, fig8, million, parbench, serve, table1, table2, table3,
    thetasweep, updates,
};
use nd_datasets::{ExternalDataset, PaperDataset};

/// The result of executing one scenario.
#[derive(Debug, Clone)]
pub struct Executed {
    /// Human-readable driver output (`format()`, or the paper
    /// experiment's full printed block).
    pub text: String,
    /// The driver's raw JSON report, byte-identical to what the direct
    /// subcommand would have written with `--out` (bench drivers only).
    pub raw_json: Option<String>,
    /// Deterministic counters extracted from the report, in path order.
    pub counters: Vec<(String, f64)>,
    /// Every failed expectation (empty means the scenario passed).
    pub failures: Vec<String>,
}

impl Executed {
    /// Whether every declared expectation held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

// ---------------------------------------------------------------------
// Spec -> driver config
// ---------------------------------------------------------------------

fn file_dataset(dataset: &DatasetSpec) -> Option<ExternalDataset> {
    match dataset {
        DatasetSpec::File {
            path,
            format,
            prob_model,
        } => Some(ExternalDataset::new(
            path.clone(),
            *format,
            prob_model.clone(),
        )),
        _ => None,
    }
}

/// Applies a `kind = "generated"` dataset's size to a config's
/// vertices/edges/seed fields (the `--edges`-derives-vertices rule of
/// the CLI lives in the spec layer too, via [`crate::cli::derive_vertices`]).
fn generated_dims(dataset: &DatasetSpec) -> Option<(usize, usize, u64)> {
    match dataset {
        DatasetSpec::Generated {
            edges,
            vertices,
            seed,
        } => Some((
            vertices.unwrap_or_else(|| crate::cli::derive_vertices(*edges)),
            *edges,
            *seed,
        )),
        _ => None,
    }
}

/// The parallel-substrate config a spec describes.
pub fn parbench_config(spec: &Spec) -> Result<parbench::ParBenchConfig, String> {
    let mut config = parbench::ParBenchConfig::default();
    if let Some((vertices, edges, seed)) = generated_dims(&spec.dataset) {
        config.vertices = vertices;
        config.edges = edges;
        config.seed = seed;
    }
    if let Some(repeats) = spec.params.repeats {
        config.repeats = repeats;
    }
    if let Some(threads) = &spec.params.threads {
        config.threads = threads.clone();
    }
    config.input = file_dataset(&spec.dataset);
    Ok(config)
}

/// The θ-sweep config a spec describes.
pub fn thetasweep_config(spec: &Spec) -> Result<thetasweep::SweepBenchConfig, String> {
    let mut config = thetasweep::SweepBenchConfig::default();
    if let Some(rank) = spec.params.rank {
        config.rank = rank;
    }
    if let Some((vertices, edges, seed)) = generated_dims(&spec.dataset) {
        config.vertices = vertices;
        config.edges = edges;
        config.seed = seed;
    }
    if let Some(thetas) = &spec.params.thetas {
        config.thetas = thetas.clone();
    }
    if let Some(repeats) = spec.params.repeats {
        config.repeats = repeats;
    }
    validate_grid("thetasweep", &config.thetas)?;
    config.input = file_dataset(&spec.dataset);
    Ok(config)
}

/// The incremental-update config a spec describes.
pub fn updates_config(spec: &Spec) -> Result<updates::UpdateBenchConfig, String> {
    let mut config = updates::UpdateBenchConfig::default();
    if let Some(rank) = spec.params.rank {
        config.rank = rank;
    }
    if let Some((vertices, edges, seed)) = generated_dims(&spec.dataset) {
        config.vertices = vertices;
        config.edges = edges;
        config.seed = seed;
    }
    if let Some(thetas) = &spec.params.thetas {
        config.thetas = thetas.clone();
    }
    if let Some(batch) = spec.params.batch {
        config.batch = batch;
    }
    validate_grid("updates", &config.thetas)?;
    config.input = file_dataset(&spec.dataset);
    Ok(config)
}

/// The oneshot serve config a spec describes.
pub fn serve_config(spec: &Spec) -> Result<serve::ServeBenchConfig, String> {
    let mut config = serve::ServeBenchConfig::default();
    if let Some((vertices, edges, seed)) = generated_dims(&spec.dataset) {
        config.vertices = vertices;
        config.edges = edges;
        config.seed = seed;
    }
    if let Some(cache) = spec.params.cache {
        config.cache_capacity = cache;
    }
    if let Some(pool) = spec.params.pool {
        config.threads = Some(pool);
    }
    if let Some(thetas) = &spec.params.thetas {
        if thetas.len() < 2 {
            return Err("serve: --thetas needs a grid of at least 2 points".to_string());
        }
        config.thetas = thetas.clone();
    }
    config.input = file_dataset(&spec.dataset);
    Ok(config)
}

/// The million-edge baseline config a spec describes.
pub fn million_config(spec: &Spec) -> Result<million::MillionBenchConfig, String> {
    let mut config = million::MillionBenchConfig::default();
    if let DatasetSpec::Ba {
        vertices,
        attach,
        seed,
    } = &spec.dataset
    {
        config.vertices = *vertices;
        config.attach = *attach;
        config.seed = *seed;
    }
    if let Some(pool) = spec.params.pool {
        config.threads = pool;
    }
    if let Some(chunk) = spec.params.chunk_edges {
        config.streaming_chunk_edges = chunk;
    }
    if let Some(thetas) = &spec.params.thetas {
        config.thetas = thetas.clone();
    }
    validate_grid("million", &config.thetas)?;
    Ok(config)
}

/// Pre-validates a θ-grid through the sweep engine so malformed grids
/// fail with the typed validation message before any work — the same
/// check (and error prefix) the subcommand arms always applied.
fn validate_grid(subcommand: &str, thetas: &[f64]) -> Result<(), String> {
    nucleus::ThetaSweep::new(nucleus::SweepConfig::exact(thetas.to_vec()))
        .map(|_| ())
        .map_err(|e| format!("{subcommand}: {e}"))
}

// ---------------------------------------------------------------------
// Headers (the exact `# experiment: …` lines the subcommands print)
// ---------------------------------------------------------------------

/// The `# experiment:` header a bench spec's run prints — reproduced
/// from the built config so the registry-driven subcommands emit the
/// same lines they always did.
pub fn header(spec: &Spec) -> Result<String, String> {
    Ok(match spec.workload {
        Workload::Parbench => {
            let config = parbench_config(spec)?;
            match &config.input {
                Some(input) => format!(
                    "# experiment: parbench  input: {} ({})  threads: {:?}  repeats: {}\n",
                    input.path.display(),
                    input.format,
                    config.threads,
                    config.repeats
                ),
                None => format!(
                    "# experiment: parbench  vertices: {}  edges: {}  threads: {:?}  repeats: {}  seed: {}\n",
                    config.vertices, config.edges, config.threads, config.repeats, config.seed
                ),
            }
        }
        Workload::Thetasweep => {
            let config = thetasweep_config(spec)?;
            match &config.input {
                Some(input) => format!(
                    "# experiment: thetasweep  rank: {}  input: {} ({})  grid: {:?}  repeats: {}\n",
                    config.rank,
                    input.path.display(),
                    input.format,
                    config.thetas,
                    config.repeats
                ),
                None => format!(
                    "# experiment: thetasweep  rank: {}  vertices: {}  edges: {}  grid: {:?}  repeats: {}  seed: {}\n",
                    config.rank,
                    config.vertices,
                    config.edges,
                    config.thetas,
                    config.repeats,
                    config.seed
                ),
            }
        }
        Workload::Updates => {
            let config = updates_config(spec)?;
            match &config.input {
                Some(input) => format!(
                    "# experiment: updates  rank: {}  input: {} ({})  grid: {:?}  batch: {}\n",
                    config.rank,
                    input.path.display(),
                    input.format,
                    config.thetas,
                    config.batch
                ),
                None => format!(
                    "# experiment: updates  rank: {}  vertices: {}  edges: {}  grid: {:?}  batch: {}  seed: {}\n",
                    config.rank,
                    config.vertices,
                    config.edges,
                    config.thetas,
                    config.batch,
                    config.seed
                ),
            }
        }
        Workload::Serve => {
            let config = serve_config(spec)?;
            match &config.input {
                Some(input) => format!(
                    "# experiment: serve --oneshot  input: {} ({})  grid: {:?}\n",
                    input.path.display(),
                    input.format,
                    config.thetas
                ),
                None => format!(
                    "# experiment: serve --oneshot  vertices: {}  edges: {}  grid: {:?}  seed: {}\n",
                    config.vertices, config.edges, config.thetas, config.seed
                ),
            }
        }
        Workload::Million => {
            let config = million_config(spec)?;
            format!(
                "# experiment: million  vertices: {}  attach: {}  (~{} edges)  threads: {}  grid: {:?}  seed: {}\n",
                config.vertices,
                config.attach,
                config.expected_edges(),
                config.threads,
                config.thetas,
                config.seed
            )
        }
        paper => format!("# experiment: {paper}\n"),
    })
}

// ---------------------------------------------------------------------
// Counter extraction
// ---------------------------------------------------------------------

/// One extraction probe into a report's JSON.
enum Probe {
    /// A single dotted path.
    Path(&'static [&'static str]),
    /// Every numeric direct child of one object (e.g. `stats`).
    AllUnder(&'static str),
}

/// The deterministic counter surface of each bench report.  Wall-clock
/// fields, `peak_rss_bytes` (process-global high-water mark) and the
/// reload/mmap speedups are environment-dependent and stay out.
fn probes(workload: Workload) -> &'static [Probe] {
    use Probe::{AllUnder, Path};
    match workload {
        Workload::Parbench => &[
            Path(&["vertices"]),
            Path(&["edges"]),
            AllUnder("counts"),
            Path(&["peel", "dp_calls"]),
            Path(&["peel", "recompute_skips"]),
            Path(&["peel", "buckets_touched"]),
            Path(&["peel", "peak_scratch_bytes"]),
            Path(&["peel", "reference_dp_calls"]),
            Path(&["peel", "max_score"]),
        ],
        Workload::Thetasweep => &[
            Path(&["vertices"]),
            Path(&["edges"]),
            AllUnder("counts"),
            Path(&["sweep", "grid_size"]),
            Path(&["sweep", "support_builds"]),
            Path(&["sweep", "independent_support_builds"]),
            Path(&["sweep", "dp_calls_total"]),
            Path(&["sweep", "independent_dp_calls_total"]),
        ],
        Workload::Updates => &[
            Path(&["vertices"]),
            Path(&["edges"]),
            Path(&["edges_after"]),
            AllUnder("batch"),
            AllUnder("repair"),
        ],
        Workload::Serve => &[Path(&["vertices"]), Path(&["edges"]), AllUnder("stats")],
        Workload::Million => &[
            Path(&["vertices"]),
            Path(&["edges"]),
            AllUnder("counts"),
            Path(&["million", "snapshot_bytes"]),
            Path(&["million", "streaming_chunk_edges"]),
            Path(&["sweep", "grid_size"]),
            Path(&["sweep", "support_builds"]),
            Path(&["sweep", "dp_calls_total"]),
        ],
        _ => &[],
    }
}

/// Runs the probe table against a parsed report.  Extraction is
/// presence-based (a missing path is skipped, not an error): the
/// committed `BENCH_matrix.json` baseline pins which counters exist,
/// and `bench-compare` regresses any that vanish.
fn extract(report: &Json, workload: Workload) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for probe in probes(workload) {
        match probe {
            Probe::Path(path) => {
                if let Some(v) = report.path(path).and_then(Json::as_f64) {
                    out.push((path.join("."), v));
                }
            }
            Probe::AllUnder(key) => {
                if let Some(Json::Obj(members)) = report.get(key) {
                    for (name, value) in members {
                        if let Some(v) = value.as_f64() {
                            out.push((format!("{key}.{name}"), v));
                        }
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Paper experiments
// ---------------------------------------------------------------------

/// One paper table/figure run: the exact text block the `experiments`
/// binary prints for it, plus the deterministic row/shape counters.
pub struct PaperOutput {
    /// The full printed block (format + shape-check lines), with every
    /// newline the subcommand path emits.
    pub text: String,
    /// Datasets (or ablation points) the experiment processed.
    pub rows: usize,
    /// `check_shape()` deviations, for drivers that have one.
    pub shape_violations: Option<usize>,
}

fn shape_block(text: String, violations: Vec<String>, rows: usize) -> PaperOutput {
    let mut out = format!("{text}\n");
    if violations.is_empty() {
        out.push_str("shape check: OK (matches the paper's qualitative claims)\n");
    } else {
        out.push_str(&format!(
            "shape check: {} deviation(s):\n",
            violations.len()
        ));
        for v in &violations {
            out.push_str(&format!("  - {v}\n"));
        }
    }
    out.push('\n');
    PaperOutput {
        text: out,
        rows,
        shape_violations: Some(violations.len()),
    }
}

/// Runs one paper experiment through its driver — the single dispatch
/// the `experiments` paper arm and the matrix both use.  Panics if
/// `workload` is a bench driver.
pub fn run_paper(ctx: &ExperimentContext, workload: Workload) -> PaperOutput {
    let all = |requested: &[PaperDataset]| ctx.effective_datasets(requested);
    match workload {
        Workload::Table1 => {
            let datasets = all(&PaperDataset::all());
            let rows = datasets.len();
            PaperOutput {
                text: format!("{}\n", table1::run(ctx, &datasets).format()),
                rows,
                shape_violations: None,
            }
        }
        Workload::Table2 => {
            let datasets = all(&PaperDataset::all());
            let rows = datasets.len();
            let t = table2::run(ctx, &datasets);
            shape_block(t.format(), t.check_shape(), rows)
        }
        Workload::Table3 => {
            let datasets = all(&[
                PaperDataset::Dblp,
                PaperDataset::Pokec,
                PaperDataset::Biomine,
            ]);
            let rows = datasets.len();
            let t = table3::run(ctx, &datasets);
            shape_block(t.format(), t.check_shape(), rows)
        }
        Workload::Fig4 => {
            let datasets = all(&PaperDataset::all());
            let rows = datasets.len();
            let fig = fig4::run(ctx, &datasets);
            shape_block(fig.format(), fig.check_shape(), rows)
        }
        Workload::Fig5 => {
            let datasets = all(&PaperDataset::all());
            let rows = datasets.len();
            let fig = fig5::run(ctx, &datasets, 2, 200);
            shape_block(fig.format(), fig.check_shape(), rows)
        }
        Workload::Fig6 => {
            let fig = fig6::run(ctx, fig6::SAMPLES);
            shape_block(fig.format(), fig.check_shape(), 1)
        }
        Workload::Fig7 => {
            let fig = fig7::run(ctx, PaperDataset::Flickr);
            shape_block(fig.format(), fig.check_shape(), 1)
        }
        Workload::Fig8 => {
            let datasets = all(&[
                PaperDataset::Krogan,
                PaperDataset::Flickr,
                PaperDataset::Dblp,
            ]);
            let rows = datasets.len();
            let fig = fig8::run(ctx, &datasets, 3, 200);
            shape_block(fig.format(), fig.check_shape(), rows)
        }
        Workload::Ablation => {
            let sample_points: &[usize] = &[50, 150, 500, 1500, 5000];
            let cost_points: &[usize] = &[16, 64, 256, 1024];
            let samples = ablation::run_sample_ablation(ctx, sample_points);
            let cost = ablation::run_scoring_cost(ctx, cost_points, 200);
            PaperOutput {
                text: format!(
                    "{}\n\n{}\n",
                    samples.format(),
                    ablation::format_scoring_cost(&cost)
                ),
                rows: sample_points.len() + cost_points.len(),
                shape_violations: None,
            }
        }
        bench => panic!("run_paper called with bench workload {bench}"),
    }
}

/// Builds the experiment context a paper spec describes (loading the
/// external graph through the snapshot cache for `kind = "file"`).
pub fn paper_context(spec: &Spec) -> Result<ExperimentContext, String> {
    match &spec.dataset {
        DatasetSpec::Paper { scale, seed } => Ok(ExperimentContext::new(*scale, *seed)),
        DatasetSpec::File { .. } => {
            let input = file_dataset(&spec.dataset).expect("file dataset");
            let graph = input
                .load_cached()
                .map_err(|e| format!("cannot load {}: {e}", input.path.display()))?;
            Ok(ExperimentContext::new(nd_datasets::Scale::Tiny, 42)
                .with_external_graph(input.name.clone(), graph))
        }
        other => Err(format!("paper workloads cannot run on {other:?}")),
    }
}

// ---------------------------------------------------------------------
// Execution + expectation judging
// ---------------------------------------------------------------------

/// Judges every declared expectation against the extracted counters,
/// with the same gate semantics `bench-compare` applies (expected value
/// as the baseline side, at the spec's tolerance).
fn check_expectations(spec: &Spec, counters: &[(String, f64)], failures: &mut Vec<String>) {
    for e in &spec.expect {
        let Some(&(_, actual)) = counters.iter().find(|(path, _)| *path == e.path) else {
            failures.push(format!(
                "{}: expected counter is missing from the report",
                e.path
            ));
            continue;
        };
        let (regression, _) =
            crate::compare::judge(e.gate, Some(e.value), Some(actual), spec.tolerance);
        if let Some(reason) = regression {
            failures.push(format!("{}: {reason}", e.path));
        }
    }
}

/// Executes one scenario through its driver.  `Err` means the driver
/// could not run at all (bad config, unloadable input); a run that
/// completes but misses an expectation is `Ok` with `failures`.
pub fn execute(spec: &Spec) -> Result<Executed, String> {
    let (text, raw_json, mut extra_failures) = match spec.workload {
        Workload::Parbench => {
            let config = parbench_config(spec)?;
            let report = parbench::run(&config).map_err(|e| e.to_string())?;
            (report.format(), Some(report.to_json()), Vec::new())
        }
        Workload::Thetasweep => {
            let config = thetasweep_config(spec)?;
            let report = thetasweep::run_bench(&config).map_err(|e| e.to_string())?;
            (report.format(), Some(report.to_json()), Vec::new())
        }
        Workload::Updates => {
            let config = updates_config(spec)?;
            let report = updates::run(&config).map_err(|e| e.to_string())?;
            (report.format(), Some(report.to_json()), Vec::new())
        }
        Workload::Serve => {
            let config = serve_config(spec)?;
            let report = serve::run(&config).map_err(|e| e.to_string())?;
            let mut failures = Vec::new();
            if !report.passed() {
                failures.push("serve oneshot self-test failed (see report failures)".to_string());
            }
            (report.format(), Some(report.to_json()), failures)
        }
        Workload::Million => {
            let config = million_config(spec)?;
            let report = million::run(&config);
            (report.format(), Some(report.to_json()), Vec::new())
        }
        paper => {
            let ctx = paper_context(spec)?;
            let output = run_paper(&ctx, paper);
            let mut counters = vec![("rows".to_string(), output.rows as f64)];
            if let Some(violations) = output.shape_violations {
                counters.push(("shape_violations".to_string(), violations as f64));
            }
            let mut failures = Vec::new();
            check_expectations(spec, &counters, &mut failures);
            return Ok(Executed {
                text: output.text,
                raw_json: None,
                counters,
                failures,
            });
        }
    };
    let raw = raw_json.as_deref().expect("bench drivers emit JSON");
    let report =
        Json::parse(raw).map_err(|e| format!("{}: emitted invalid JSON: {e}", spec.name))?;
    let counters = extract(&report, spec.workload);
    let mut failures = std::mem::take(&mut extra_failures);
    check_expectations(spec, &counters, &mut failures);
    Ok(Executed {
        text,
        raw_json,
        counters,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::Gate;
    use crate::registry::spec;

    fn parse(text: &str) -> Spec {
        spec::parse(text).unwrap().spec
    }

    #[test]
    fn generated_specs_build_the_cli_equivalent_configs() {
        let spec = parse(
            "name = \"x\"\nworkload = \"thetasweep\"\n\n\
             [dataset]\nkind = \"generated\"\nedges = 5000\nseed = 7\n\n\
             [params]\nrank = \"truss\"\nthetas = [0.1, 0.5]\nrepeats = 2\n",
        );
        let config = thetasweep_config(&spec).unwrap();
        // Same derivation the CLI applies for --edges without --vertices.
        assert_eq!(config.vertices, 200);
        assert_eq!(config.edges, 5000);
        assert_eq!(config.seed, 7);
        assert_eq!(config.rank, nucleus::Rank::Truss);
        assert_eq!(config.thetas, vec![0.1, 0.5]);
        assert_eq!(config.repeats, 2);
        assert!(config.input.is_none());
    }

    #[test]
    fn unset_params_keep_driver_defaults() {
        let spec = parse(
            "name = \"x\"\nworkload = \"parbench\"\n\n\
             [dataset]\nkind = \"generated\"\nedges = 50000\n",
        );
        let config = parbench_config(&spec).unwrap();
        let default = parbench::ParBenchConfig::default();
        assert_eq!(config.repeats, default.repeats);
        assert_eq!(config.threads, default.threads);
        assert_eq!(config.vertices, default.vertices);
    }

    #[test]
    fn expectations_judge_with_gate_semantics() {
        let spec = parse(
            "name = \"x\"\nworkload = \"thetasweep\"\n\n\
             [dataset]\nkind = \"generated\"\nedges = 100\n\n\
             [expect]\n\"sweep.support_builds\" = 1\n\"sweep.dp_calls_total\" = 500\n\n\
             [gates]\n\"sweep.dp_calls_total\" = \"lower-is-better\"\n",
        );
        assert_eq!(spec.expect[0].gate, Gate::LowerIsBetter);
        let counters = vec![
            ("sweep.support_builds".to_string(), 1.0),
            ("sweep.dp_calls_total".to_string(), 400.0),
        ];
        let mut failures = Vec::new();
        check_expectations(&spec, &counters, &mut failures);
        assert!(failures.is_empty(), "{failures:?}");
        // Exact mismatch and a lower-is-better increase both fail.
        let counters = vec![
            ("sweep.support_builds".to_string(), 2.0),
            ("sweep.dp_calls_total".to_string(), 600.0),
        ];
        let mut failures = Vec::new();
        check_expectations(&spec, &counters, &mut failures);
        assert_eq!(failures.len(), 2, "{failures:?}");
        // A missing counter is its own failure.
        let mut failures = Vec::new();
        check_expectations(&spec, &[], &mut failures);
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures[0].contains("missing"), "{failures:?}");
    }

    #[test]
    fn headers_match_the_subcommand_format() {
        let spec = parse(
            "name = \"x\"\nworkload = \"updates\"\n\n\
             [dataset]\nkind = \"generated\"\nedges = 4000\nseed = 42\n\n\
             [params]\nrank = \"truss\"\nthetas = [0.05, 0.1, 0.3]\nbatch = 16\n",
        );
        assert_eq!(
            header(&spec).unwrap(),
            "# experiment: updates  rank: truss  vertices: 160  edges: 4000  \
             grid: [0.05, 0.1, 0.3]  batch: 16  seed: 42\n"
        );
    }
}
