//! The matrix runner and its `bench-matrix/v1` report.
//!
//! `experiments matrix` executes every selected scenario through
//! [`run::execute`] and emits one JSON document
//! with per-scenario pass/fail, the extracted deterministic counters
//! and the registry totals.  `bench-compare` knows the family: the
//! committed `BENCH_matrix.json` baseline gates every recorded counter
//! of every scenario at tolerance 0 in CI (the `matrix-smoke` job),
//! replacing the per-family python gate blocks.

use super::run;
use super::spec::Workload;
use super::Scenario;
use crate::json::Json;

/// One executed (or failed-to-execute) scenario in the matrix.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: String,
    /// Its workload.
    pub workload: Workload,
    /// Builtin or source file name (display form of the origin).
    pub origin: String,
    /// Whether the run completed with every expectation met.
    pub passed: bool,
    /// Failed expectations, or the driver error when it could not run.
    pub failures: Vec<String>,
    /// Deterministic counters extracted from the driver report.
    pub counters: Vec<(String, f64)>,
}

/// The full matrix result.
#[derive(Debug, Clone, Default)]
pub struct MatrixReport {
    /// Per-scenario outcomes, in registry (name) order.
    pub outcomes: Vec<ScenarioOutcome>,
}

impl MatrixReport {
    /// Scenarios that passed.
    pub fn passed_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.passed).count()
    }

    /// Scenarios that failed.
    pub fn failed_count(&self) -> usize {
        self.outcomes.len() - self.passed_count()
    }

    /// Whether every scenario passed.
    pub fn passed(&self) -> bool {
        self.failed_count() == 0
    }

    /// The `bench-matrix/v1` JSON document.
    pub fn to_json(&self) -> String {
        let scenarios: Vec<Json> = self
            .outcomes
            .iter()
            .map(|o| {
                Json::Obj(vec![
                    ("name".to_string(), Json::Str(o.name.clone())),
                    ("workload".to_string(), Json::Str(o.workload.to_string())),
                    ("origin".to_string(), Json::Str(o.origin.clone())),
                    ("passed".to_string(), Json::Bool(o.passed)),
                    (
                        "failures".to_string(),
                        Json::Arr(o.failures.iter().cloned().map(Json::Str).collect()),
                    ),
                    (
                        "counters".to_string(),
                        Json::Obj(
                            o.counters
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            (
                "schema".to_string(),
                Json::Str("bench-matrix/v1".to_string()),
            ),
            ("total".to_string(), Json::Num(self.outcomes.len() as f64)),
            ("passed".to_string(), Json::Num(self.passed_count() as f64)),
            ("failed".to_string(), Json::Num(self.failed_count() as f64)),
            ("scenarios".to_string(), Json::Arr(scenarios)),
        ]);
        let mut text = doc.to_json_string();
        text.push('\n');
        text
    }

    /// Human-readable verdict table.
    pub fn format(&self) -> String {
        let mut rows: Vec<[String; 4]> = vec![[
            "scenario".to_string(),
            "workload".to_string(),
            "counters".to_string(),
            "verdict".to_string(),
        ]];
        for o in &self.outcomes {
            rows.push([
                o.name.clone(),
                o.workload.to_string(),
                o.counters.len().to_string(),
                if o.passed {
                    "ok".to_string()
                } else {
                    "FAILED".to_string()
                },
            ]);
        }
        let mut out = align(&rows);
        for o in &self.outcomes {
            for failure in &o.failures {
                out.push_str(&format!("  {}: {failure}\n", o.name));
            }
        }
        out.push_str(&format!(
            "matrix: {} scenario(s), {} passed, {} failed\n",
            self.outcomes.len(),
            self.passed_count(),
            self.failed_count()
        ));
        out
    }
}

/// The `--dry-run` enumeration listing: deterministic, sorted by name
/// (registry order), golden-tested.
pub fn format_listing(scenarios: &[&Scenario]) -> String {
    let mut rows: Vec<[String; 4]> = vec![[
        "scenario".to_string(),
        "workload".to_string(),
        "origin".to_string(),
        "tags".to_string(),
    ]];
    for s in scenarios {
        rows.push([
            s.spec.name.clone(),
            s.spec.workload.to_string(),
            s.origin.to_string(),
            s.spec.tags.join(","),
        ]);
    }
    let mut out = align(&rows);
    out.push_str(&format!("matrix: {} scenario(s)\n", scenarios.len()));
    out
}

/// Column-aligns rows with two-space gutters.
fn align(rows: &[[String; 4]]) -> String {
    let mut widths = [0usize; 4];
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for row in rows {
        let mut line = String::new();
        for (w, cell) in widths.iter().zip(row.iter()) {
            line.push_str(&format!("{cell:w$}  ", w = *w));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Executes every selected scenario, reporting progress through
/// `progress` (one line before each run, one after).  A driver that
/// cannot run at all becomes a failed outcome, not an abort — the
/// matrix always reports the full registry surface.
pub fn run_matrix(scenarios: &[&Scenario], progress: &mut dyn FnMut(&str)) -> MatrixReport {
    let mut outcomes = Vec::with_capacity(scenarios.len());
    for scenario in scenarios {
        let spec = &scenario.spec;
        progress(&format!("running {} ({}) ...", spec.name, spec.workload));
        let outcome = match run::execute(spec) {
            Ok(executed) => ScenarioOutcome {
                name: spec.name.clone(),
                workload: spec.workload,
                origin: scenario.origin.to_string(),
                passed: executed.passed(),
                failures: executed.failures,
                counters: executed.counters,
            },
            Err(message) => ScenarioOutcome {
                name: spec.name.clone(),
                workload: spec.workload,
                origin: scenario.origin.to_string(),
                passed: false,
                failures: vec![message],
                counters: Vec::new(),
            },
        };
        progress(&format!(
            "  {} {}",
            spec.name,
            if outcome.passed { "ok" } else { "FAILED" }
        ));
        outcomes.push(outcome);
    }
    MatrixReport { outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare;

    fn outcome(name: &str, passed: bool) -> ScenarioOutcome {
        ScenarioOutcome {
            name: name.to_string(),
            workload: Workload::Parbench,
            origin: "builtin".to_string(),
            passed,
            failures: if passed {
                Vec::new()
            } else {
                vec!["x: expected 1, got 2".to_string()]
            },
            counters: vec![
                ("counts.triangles".to_string(), 1234.0),
                ("peel.dp_calls".to_string(), 400.0),
            ],
        }
    }

    #[test]
    fn report_json_is_a_gateable_bench_matrix_document() {
        let report = MatrixReport {
            outcomes: vec![outcome("a", true), outcome("b", false)],
        };
        let doc = Json::parse(&report.to_json()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("bench-matrix/v1")
        );
        assert_eq!(doc.get("total").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("passed").and_then(Json::as_f64), Some(1.0));
        assert_eq!(doc.get("failed").and_then(Json::as_f64), Some(1.0));
        let scenarios = doc.get("scenarios").and_then(Json::as_array).unwrap();
        assert_eq!(scenarios.len(), 2);
        assert_eq!(
            scenarios[0]
                .path(&["counters", "peel.dp_calls"])
                .and_then(Json::as_f64),
            Some(400.0)
        );
        // The document gates against itself cleanly through bench-compare.
        let diff = compare::compare(&doc, &doc, 0.0).unwrap();
        assert!(diff.regressions().is_empty(), "{:?}", diff.regressions());
    }

    #[test]
    fn format_lists_failures_and_totals() {
        let report = MatrixReport {
            outcomes: vec![outcome("a", true), outcome("b", false)],
        };
        let text = report.format();
        assert!(
            text.contains("matrix: 2 scenario(s), 1 passed, 1 failed"),
            "{text}"
        );
        assert!(text.contains("b: x: expected 1, got 2"), "{text}");
    }
}
