//! The declarative scenario spec format: a zero-dependency TOML subset
//! with typed, line-numbered errors and a canonical serializer.
//!
//! A spec describes one runnable scenario as dataset × prob-model ×
//! rank/algorithm × θ-grid × expected-counters × gate:
//!
//! ```toml
//! name = "thetasweep-truss-smoke"
//! workload = "thetasweep"
//! tags = ["bench", "sweep"]
//!
//! [dataset]
//! kind = "generated"
//! edges = 4000
//! seed = 42
//!
//! [params]
//! rank = "truss"
//! thetas = [0.05, 0.1, 0.3]
//! repeats = 1
//!
//! [expect]
//! "sweep.support_builds" = 1
//!
//! [gates]
//! "sweep.support_builds" = "exact"
//! ```
//!
//! The grammar is the TOML subset the registry needs and nothing more:
//! `#` comments, `[section]` headers, `key = value` pairs with bare or
//! quoted keys, and string / number / boolean / flat-array values.
//! Every parse error is a typed [`SpecError`] carrying the 1-based line
//! it was found on, so a typo in a scenario file points at itself.
//!
//! [`Spec::to_toml`] renders the canonical form (fixed key order,
//! defaults omitted, `[expect]`/`[gates]` sorted by counter path);
//! `parse(to_toml(spec))` reproduces the spec exactly, and
//! `to_toml(parse(text))` is a fixpoint — the round-trip property the
//! proptests pin.

use std::path::PathBuf;

use crate::compare::Gate;
use nd_datasets::Scale;
use nucleus::Rank;
use ugraph::io::EdgeProbabilityModel;
use ugraph::InputFormat;

/// Everything that can be wrong with a scenario spec, each variant
/// carrying the 1-based line number it was detected on.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The line is not a comment, section header or `key = value` pair.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A `[section]` header this format does not define.
    UnknownSection {
        /// 1-based line number.
        line: usize,
        /// The unrecognized section name.
        name: String,
    },
    /// A key this section does not define.
    UnknownKey {
        /// 1-based line number.
        line: usize,
        /// The unrecognized key.
        key: String,
        /// The section it appeared in (`top` for the preamble).
        section: String,
    },
    /// The same key (or section header) appeared twice.
    DuplicateKey {
        /// 1-based line number of the second occurrence.
        line: usize,
        /// The duplicated key.
        key: String,
        /// The section it appeared in.
        section: String,
    },
    /// A required key is absent.
    MissingField {
        /// The section the key belongs to.
        section: String,
        /// The missing key.
        key: String,
    },
    /// `workload` names no known workload.
    UnknownWorkload {
        /// 1-based line number.
        line: usize,
        /// The unrecognized value.
        value: String,
    },
    /// `rank` names no known (r,s) rank.
    BadRank {
        /// 1-based line number.
        line: usize,
        /// The unrecognized value.
        value: String,
    },
    /// The θ-grid is not strictly increasing.
    UnsortedThetaGrid {
        /// 1-based line number of the `thetas` key.
        line: usize,
    },
    /// `tolerance` is outside `[0, 1]`.
    ToleranceOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending value.
        value: f64,
    },
    /// A key's value has the wrong type or an invalid content.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// The key whose value is bad.
        key: String,
        /// What was wrong.
        message: String,
    },
    /// Two scenarios (across files and builtins) share one name.
    DuplicateName {
        /// 1-based line of the `name` key of the *second* spec.
        line: usize,
        /// The colliding scenario name.
        name: String,
    },
    /// A scenario file could not be read.
    Io {
        /// The file that failed.
        path: PathBuf,
        /// The underlying error.
        message: String,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            SpecError::UnknownSection { line, name } => {
                write!(f, "line {line}: unknown section [{name}]")
            }
            SpecError::UnknownKey { line, key, section } => {
                write!(f, "line {line}: unknown key '{key}' in [{section}]")
            }
            SpecError::DuplicateKey { line, key, section } => {
                write!(f, "line {line}: duplicate key '{key}' in [{section}]")
            }
            SpecError::MissingField { section, key } => {
                write!(f, "missing required key '{key}' in [{section}]")
            }
            SpecError::UnknownWorkload { line, value } => {
                write!(f, "line {line}: unknown workload '{value}'")
            }
            SpecError::BadRank { line, value } => {
                write!(
                    f,
                    "line {line}: unknown rank '{value}' (expected core, truss or nucleus)"
                )
            }
            SpecError::UnsortedThetaGrid { line } => {
                write!(f, "line {line}: thetas must be strictly increasing")
            }
            SpecError::ToleranceOutOfRange { line, value } => {
                write!(f, "line {line}: tolerance {value} outside [0, 1]")
            }
            SpecError::BadValue { line, key, message } => {
                write!(f, "line {line}: bad value for '{key}': {message}")
            }
            SpecError::DuplicateName { line, name } => {
                write!(f, "line {line}: duplicate scenario name '{name}'")
            }
            SpecError::Io { path, message } => {
                write!(f, "cannot read {}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// The workload a scenario drives — one per `experiments` subcommand
/// (bench drivers) or paper experiment id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// The parallel-substrate benchmark (`parbench`).
    Parbench,
    /// The θ-sweep amortization benchmark (`thetasweep`).
    Thetasweep,
    /// The incremental-update benchmark (`updates`).
    Updates,
    /// The query-service scripted self-test (`serve --oneshot`).
    Serve,
    /// The million-edge memory-scaling baseline (`million`).
    Million,
    /// Paper Table 1 (dataset statistics).
    Table1,
    /// Paper Table 2 (decomposition sizes).
    Table2,
    /// Paper Table 3 (runtime comparison).
    Table3,
    /// Paper Figure 4 (nucleusness distributions).
    Fig4,
    /// Paper Figure 5 (density of discovered nuclei).
    Fig5,
    /// Paper Figure 6 (sampling-accuracy trade-off).
    Fig6,
    /// Paper Figure 7 (threshold sensitivity).
    Fig7,
    /// Paper Figure 8 (case-study nuclei).
    Fig8,
    /// The sampling/scoring ablation.
    Ablation,
}

impl Workload {
    /// Every workload, in canonical (display) order.
    pub const ALL: [Workload; 14] = [
        Workload::Parbench,
        Workload::Thetasweep,
        Workload::Updates,
        Workload::Serve,
        Workload::Million,
        Workload::Table1,
        Workload::Table2,
        Workload::Table3,
        Workload::Fig4,
        Workload::Fig5,
        Workload::Fig6,
        Workload::Fig7,
        Workload::Fig8,
        Workload::Ablation,
    ];

    /// Whether this is a paper table/figure (runs through
    /// [`crate::runner::ExperimentContext`]) rather than a bench driver.
    pub fn is_paper(&self) -> bool {
        !matches!(
            self,
            Workload::Parbench
                | Workload::Thetasweep
                | Workload::Updates
                | Workload::Serve
                | Workload::Million
        )
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Workload::Parbench => "parbench",
            Workload::Thetasweep => "thetasweep",
            Workload::Updates => "updates",
            Workload::Serve => "serve",
            Workload::Million => "million",
            Workload::Table1 => "table1",
            Workload::Table2 => "table2",
            Workload::Table3 => "table3",
            Workload::Fig4 => "fig4",
            Workload::Fig5 => "fig5",
            Workload::Fig6 => "fig6",
            Workload::Fig7 => "fig7",
            Workload::Fig8 => "fig8",
            Workload::Ablation => "ablation",
        };
        write!(f, "{name}")
    }
}

impl std::str::FromStr for Workload {
    type Err = String;

    fn from_str(s: &str) -> Result<Workload, String> {
        Workload::ALL
            .iter()
            .find(|w| w.to_string() == s)
            .copied()
            .ok_or_else(|| format!("unknown workload '{s}'"))
    }
}

/// The graph a scenario runs on.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetSpec {
    /// A seeded uniform G(n, m) graph (`kind = "generated"`), the shape
    /// the bench drivers default to.  `vertices = None` derives the
    /// average-degree-50 count.
    Generated {
        /// Edge count.
        edges: usize,
        /// Vertex count; `None` derives `(edges / 25).max(4)`.
        vertices: Option<usize>,
        /// RNG seed.
        seed: u64,
    },
    /// A seeded Barabási–Albert graph (`kind = "ba"`), the million
    /// driver's generator.
    Ba {
        /// Vertex count.
        vertices: usize,
        /// Edges each new vertex attaches with.
        attach: usize,
        /// RNG seed.
        seed: u64,
    },
    /// The paper's six synthetic datasets at a scale (`kind = "paper"`).
    Paper {
        /// Dataset scale.
        scale: Scale,
        /// RNG seed.
        seed: u64,
    },
    /// An ingested graph file (`kind = "file"`).  A relative path is
    /// resolved against the spec file's directory at load time.
    File {
        /// Path to the edge-list or snapshot file.
        path: String,
        /// On-disk format.
        format: InputFormat,
        /// Edge-probability model.
        prob_model: EdgeProbabilityModel,
    },
}

/// Optional per-workload knobs (each maps to one driver-config field;
/// `None` keeps the driver default).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Params {
    /// The (r,s) rank (`thetasweep`, `updates`).
    pub rank: Option<Rank>,
    /// The threshold grid (`thetasweep`, `updates`, `serve`, `million`).
    pub thetas: Option<Vec<f64>>,
    /// Repetitions (`parbench`, `thetasweep`).
    pub repeats: Option<usize>,
    /// Thread counts to measure (`parbench`; 1 is the implicit baseline).
    pub threads: Option<Vec<usize>>,
    /// Updates per operation kind (`updates`).
    pub batch: Option<usize>,
    /// Result-cache capacity (`serve`).
    pub cache: Option<usize>,
    /// Worker-pool size (`serve`, `million`).
    pub pool: Option<usize>,
    /// Streaming-build chunk size in edges (`million`).
    pub chunk_edges: Option<usize>,
}

/// One declared counter expectation: after the run, the counter at
/// `path` is judged against `value` under `gate` (at the spec's
/// tolerance).
#[derive(Debug, Clone, PartialEq)]
pub struct Expectation {
    /// Dotted counter path (e.g. `sweep.support_builds`).
    pub path: String,
    /// The expected value.
    pub value: f64,
    /// How the actual value is judged against the expectation.
    pub gate: Gate,
}

/// One fully validated scenario spec.
#[derive(Debug, Clone, PartialEq)]
pub struct Spec {
    /// Unique scenario name (`[a-z0-9._-]+`).
    pub name: String,
    /// The workload it drives.
    pub workload: Workload,
    /// Free-form tags for `matrix --tag` filtering.
    pub tags: Vec<String>,
    /// Relative tolerance of the expectation gates (default 0).
    pub tolerance: f64,
    /// The graph.
    pub dataset: DatasetSpec,
    /// Workload knobs.
    pub params: Params,
    /// Declared counter expectations, sorted by path.
    pub expect: Vec<Expectation>,
}

/// A parsed spec plus the source line its `name` key sits on (kept out
/// of [`Spec`] so round-tripped specs compare equal).
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSpec {
    /// The validated spec.
    pub spec: Spec,
    /// 1-based line of the `name` key, for duplicate-name reporting.
    pub name_line: usize,
}

// ---------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------

/// A raw scalar or flat-array value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Num(f64),
    Bool(bool),
    Arr(Vec<Value>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Num(_) => "number",
            Value::Bool(_) => "boolean",
            Value::Arr(_) => "array",
        }
    }
}

/// One `key = value` line, tagged with its section and line number.
#[derive(Debug, Clone)]
struct RawItem {
    section: String,
    key: String,
    value: Value,
    line: usize,
}

/// Strips a `#` comment, honouring quotes (a `#` inside a string is
/// content, not a comment).
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if in_str {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_str = false;
            }
        } else if b == b'"' {
            in_str = true;
        } else if b == b'#' {
            return &line[..i];
        }
    }
    line
}

/// Scans a double-quoted string starting at `s[0] == '"'`; returns the
/// unescaped content and the byte length consumed (including quotes).
fn scan_string(s: &str, line: usize) -> Result<(String, usize), SpecError> {
    debug_assert!(s.starts_with('"'));
    let mut out = String::new();
    let mut chars = s.char_indices().skip(1);
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, i + 1)),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, other)) => {
                    return Err(SpecError::Syntax {
                        line,
                        message: format!("unknown escape '\\{other}' in string"),
                    })
                }
                None => break,
            },
            _ => out.push(c),
        }
    }
    Err(SpecError::Syntax {
        line,
        message: "unterminated string".to_string(),
    })
}

/// Parses one scalar token (string, number or boolean).
fn parse_scalar(token: &str, line: usize) -> Result<Value, SpecError> {
    let token = token.trim();
    if token.starts_with('"') {
        let (s, consumed) = scan_string(token, line)?;
        if !token[consumed..].trim().is_empty() {
            return Err(SpecError::Syntax {
                line,
                message: format!("trailing content after string: '{}'", &token[consumed..]),
            });
        }
        return Ok(Value::Str(s));
    }
    match token {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        "" => {
            return Err(SpecError::Syntax {
                line,
                message: "missing value".to_string(),
            })
        }
        _ => {}
    }
    // Numbers: restrict the alphabet before f64::from_str so "inf",
    // "NaN" and stray words fail as syntax, not parse as non-finite.
    if token
        .bytes()
        .all(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        if let Ok(n) = token.parse::<f64>() {
            if n.is_finite() {
                return Ok(Value::Num(n));
            }
        }
    }
    Err(SpecError::Syntax {
        line,
        message: format!("cannot parse value '{token}'"),
    })
}

/// Parses a value: scalar or a single-line flat array of scalars.
fn parse_value(text: &str, line: usize) -> Result<Value, SpecError> {
    let text = text.trim();
    let Some(inner) = text.strip_prefix('[') else {
        return parse_scalar(text, line);
    };
    let Some(inner) = inner.strip_suffix(']') else {
        return Err(SpecError::Syntax {
            line,
            message: "unterminated array (arrays must be single-line)".to_string(),
        });
    };
    let mut items = Vec::new();
    // Split at top-level commas, honouring quotes.
    let mut start = 0usize;
    let bytes = inner.as_bytes();
    let mut in_str = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if in_str {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_str = false;
            }
        } else if b == b'"' {
            in_str = true;
        } else if b == b',' {
            items.push(&inner[start..i]);
            start = i + 1;
        }
    }
    items.push(&inner[start..]);
    if items.len() == 1 && items[0].trim().is_empty() {
        return Ok(Value::Arr(Vec::new()));
    }
    items
        .into_iter()
        .map(|token| parse_scalar(token, line))
        .collect::<Result<Vec<_>, _>>()
        .map(Value::Arr)
}

/// Parses a key: bare (`[A-Za-z0-9_-]+`) or double-quoted (for dotted
/// counter paths).  Returns the key and the remainder after it.
fn parse_key(text: &str, line: usize) -> Result<(String, &str), SpecError> {
    let text = text.trim_start();
    if text.starts_with('"') {
        let (key, consumed) = scan_string(text, line)?;
        return Ok((key, &text[consumed..]));
    }
    let end = text
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '-'))
        .unwrap_or(text.len());
    if end == 0 {
        return Err(SpecError::Syntax {
            line,
            message: format!("expected a key, found '{text}'"),
        });
    }
    Ok((text[..end].to_string(), &text[end..]))
}

const SECTIONS: &[&str] = &["dataset", "params", "expect", "gates"];

/// Tokenizes a spec into raw items, detecting duplicate keys and
/// sections as it goes.
fn tokenize(text: &str) -> Result<Vec<RawItem>, SpecError> {
    let mut items: Vec<RawItem> = Vec::new();
    let mut seen_sections: Vec<String> = Vec::new();
    let mut section = String::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let line = idx + 1;
        let content = strip_comment(raw_line).trim();
        if content.is_empty() {
            continue;
        }
        if let Some(header) = content.strip_prefix('[') {
            let Some(name) = header.strip_suffix(']') else {
                return Err(SpecError::Syntax {
                    line,
                    message: "unterminated section header".to_string(),
                });
            };
            let name = name.trim();
            if !SECTIONS.contains(&name) {
                return Err(SpecError::UnknownSection {
                    line,
                    name: name.to_string(),
                });
            }
            if seen_sections.iter().any(|s| s == name) {
                return Err(SpecError::DuplicateKey {
                    line,
                    key: format!("[{name}]"),
                    section: name.to_string(),
                });
            }
            seen_sections.push(name.to_string());
            section = name.to_string();
            continue;
        }
        let (key, rest) = parse_key(content, line)?;
        let rest = rest.trim_start();
        let Some(value_text) = rest.strip_prefix('=') else {
            return Err(SpecError::Syntax {
                line,
                message: format!("expected '=' after key '{key}'"),
            });
        };
        let value = parse_value(value_text, line)?;
        if items
            .iter()
            .any(|item| item.section == section && item.key == key)
        {
            return Err(SpecError::DuplicateKey {
                line,
                key,
                section: if section.is_empty() {
                    "top".to_string()
                } else {
                    section.clone()
                },
            });
        }
        items.push(RawItem {
            section: section.clone(),
            key,
            value,
            line,
        });
    }
    Ok(items)
}

// ---------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------

/// The items of one section, with take-and-check-leftovers access.
struct Fields<'a> {
    section: &'static str,
    items: Vec<&'a RawItem>,
    taken: Vec<bool>,
}

impl<'a> Fields<'a> {
    fn of(items: &'a [RawItem], section: &'static str) -> Fields<'a> {
        let key = if section == "top" { "" } else { section };
        let items: Vec<&RawItem> = items.iter().filter(|i| i.section == key).collect();
        let taken = vec![false; items.len()];
        Fields {
            section,
            items,
            taken,
        }
    }

    fn take(&mut self, key: &str) -> Option<&'a RawItem> {
        let pos = self.items.iter().position(|i| i.key == key)?;
        self.taken[pos] = true;
        Some(self.items[pos])
    }

    /// Takes every remaining item, in source order (`[expect]`/`[gates]`).
    fn take_all(&mut self) -> Vec<&'a RawItem> {
        let mut out = Vec::new();
        for (pos, item) in self.items.iter().enumerate() {
            if !self.taken[pos] {
                self.taken[pos] = true;
                out.push(*item);
            }
        }
        out
    }

    /// Errors on the first key nothing consumed.
    fn finish(self) -> Result<(), SpecError> {
        for (pos, item) in self.items.iter().enumerate() {
            if !self.taken[pos] {
                return Err(SpecError::UnknownKey {
                    line: item.line,
                    key: item.key.clone(),
                    section: self.section.to_string(),
                });
            }
        }
        Ok(())
    }
}

fn bad(item: &RawItem, message: impl Into<String>) -> SpecError {
    SpecError::BadValue {
        line: item.line,
        key: item.key.clone(),
        message: message.into(),
    }
}

fn as_str(item: &RawItem) -> Result<&str, SpecError> {
    match &item.value {
        Value::Str(s) => Ok(s),
        other => Err(bad(
            item,
            format!("expected a string, got {}", other.type_name()),
        )),
    }
}

fn as_f64(item: &RawItem) -> Result<f64, SpecError> {
    match &item.value {
        Value::Num(n) => Ok(*n),
        other => Err(bad(
            item,
            format!("expected a number, got {}", other.type_name()),
        )),
    }
}

fn num_to_usize(item: &RawItem, n: f64) -> Result<usize, SpecError> {
    if n.fract() != 0.0 || !(0.0..9_007_199_254_740_992.0).contains(&n) {
        return Err(bad(
            item,
            format!("expected a non-negative integer, got {n}"),
        ));
    }
    Ok(n as usize)
}

fn as_usize(item: &RawItem) -> Result<usize, SpecError> {
    num_to_usize(item, as_f64(item)?)
}

fn as_u64(item: &RawItem) -> Result<u64, SpecError> {
    Ok(as_usize(item)? as u64)
}

fn as_str_array(item: &RawItem) -> Result<Vec<String>, SpecError> {
    match &item.value {
        Value::Arr(items) => items
            .iter()
            .map(|v| match v {
                Value::Str(s) => Ok(s.clone()),
                other => Err(bad(
                    item,
                    format!("expected strings, got {}", other.type_name()),
                )),
            })
            .collect(),
        other => Err(bad(
            item,
            format!("expected an array, got {}", other.type_name()),
        )),
    }
}

fn as_num_array(item: &RawItem) -> Result<Vec<f64>, SpecError> {
    match &item.value {
        Value::Arr(items) => items
            .iter()
            .map(|v| match v {
                Value::Num(n) => Ok(*n),
                other => Err(bad(
                    item,
                    format!("expected numbers, got {}", other.type_name()),
                )),
            })
            .collect(),
        other => Err(bad(
            item,
            format!("expected an array, got {}", other.type_name()),
        )),
    }
}

fn as_usize_array(item: &RawItem) -> Result<Vec<usize>, SpecError> {
    as_num_array(item)?
        .into_iter()
        .map(|n| num_to_usize(item, n))
        .collect()
}

/// Validates a θ-grid: every point finite in (0, 1], strictly
/// increasing (the sweep engine's own precondition, surfaced with the
/// spec line number instead of at run time).
fn validate_thetas(item: &RawItem) -> Result<Vec<f64>, SpecError> {
    let thetas = as_num_array(item)?;
    if thetas.is_empty() {
        return Err(bad(item, "the grid needs at least one threshold"));
    }
    for &t in &thetas {
        if !(t > 0.0 && t <= 1.0) {
            return Err(bad(item, format!("threshold {t} outside (0, 1]")));
        }
    }
    if thetas.windows(2).any(|w| w[0] >= w[1]) {
        return Err(SpecError::UnsortedThetaGrid { line: item.line });
    }
    Ok(thetas)
}

/// Parses and validates one spec.
pub fn parse(text: &str) -> Result<ParsedSpec, SpecError> {
    let items = tokenize(text)?;

    // --- preamble -----------------------------------------------------
    let mut top = Fields::of(&items, "top");
    let name_item = top.take("name").ok_or(SpecError::MissingField {
        section: "top".to_string(),
        key: "name".to_string(),
    })?;
    let name = as_str(name_item)?.to_string();
    if name.is_empty()
        || !name.bytes().all(|b| {
            b.is_ascii_lowercase() || b.is_ascii_digit() || matches!(b, b'-' | b'_' | b'.')
        })
    {
        return Err(bad(name_item, "names are non-empty [a-z0-9._-]+"));
    }
    let name_line = name_item.line;
    let workload_item = top.take("workload").ok_or(SpecError::MissingField {
        section: "top".to_string(),
        key: "workload".to_string(),
    })?;
    let workload =
        as_str(workload_item)?
            .parse::<Workload>()
            .map_err(|_| SpecError::UnknownWorkload {
                line: workload_item.line,
                value: as_str(workload_item).unwrap_or_default().to_string(),
            })?;
    let tags = match top.take("tags") {
        Some(item) => as_str_array(item)?,
        None => Vec::new(),
    };
    let tolerance = match top.take("tolerance") {
        Some(item) => {
            let t = as_f64(item)?;
            if !(0.0..=1.0).contains(&t) {
                return Err(SpecError::ToleranceOutOfRange {
                    line: item.line,
                    value: t,
                });
            }
            t
        }
        None => 0.0,
    };
    top.finish()?;

    // --- [dataset] ----------------------------------------------------
    let mut ds = Fields::of(&items, "dataset");
    let kind_item = ds.take("kind").ok_or(SpecError::MissingField {
        section: "dataset".to_string(),
        key: "kind".to_string(),
    })?;
    let kind = as_str(kind_item)?.to_string();
    let dataset = match kind.as_str() {
        "generated" => {
            let edges_item = ds.take("edges").ok_or(SpecError::MissingField {
                section: "dataset".to_string(),
                key: "edges".to_string(),
            })?;
            DatasetSpec::Generated {
                edges: as_usize(edges_item)?,
                vertices: ds.take("vertices").map(as_usize).transpose()?,
                seed: ds.take("seed").map(as_u64).transpose()?.unwrap_or(42),
            }
        }
        "ba" => {
            let vertices_item = ds.take("vertices").ok_or(SpecError::MissingField {
                section: "dataset".to_string(),
                key: "vertices".to_string(),
            })?;
            let attach = ds.take("attach").map(as_usize).transpose()?.unwrap_or(5);
            if attach == 0 {
                return Err(bad(kind_item, "attach must be at least 1"));
            }
            DatasetSpec::Ba {
                vertices: as_usize(vertices_item)?,
                attach,
                seed: ds.take("seed").map(as_u64).transpose()?.unwrap_or(42),
            }
        }
        "paper" => {
            let scale = match ds.take("scale") {
                Some(item) => match as_str(item)? {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "medium" => Scale::Medium,
                    other => {
                        return Err(bad(
                            item,
                            format!("unknown scale '{other}' (expected tiny, small or medium)"),
                        ))
                    }
                },
                None => Scale::Tiny,
            };
            DatasetSpec::Paper {
                scale,
                seed: ds.take("seed").map(as_u64).transpose()?.unwrap_or(42),
            }
        }
        "file" => {
            let path_item = ds.take("path").ok_or(SpecError::MissingField {
                section: "dataset".to_string(),
                key: "path".to_string(),
            })?;
            let format = match ds.take("format") {
                Some(item) => as_str(item)?
                    .parse::<InputFormat>()
                    .map_err(|e| bad(item, e.to_string()))?,
                None => InputFormat::Snap,
            };
            let prob_model = match ds.take("prob_model") {
                Some(item) => as_str(item)?
                    .parse::<EdgeProbabilityModel>()
                    .map_err(|e| bad(item, e.to_string()))?,
                None => EdgeProbabilityModel::Column,
            };
            DatasetSpec::File {
                path: as_str(path_item)?.to_string(),
                format,
                prob_model,
            }
        }
        other => {
            return Err(bad(
                kind_item,
                format!("unknown dataset kind '{other}' (expected generated, ba, paper or file)"),
            ))
        }
    };
    ds.finish()?;

    // Workload × dataset compatibility.
    let kind_err = |msg: &str| -> SpecError { bad(kind_item, msg) };
    match workload {
        Workload::Million => {
            if !matches!(dataset, DatasetSpec::Ba { .. }) {
                return Err(kind_err("the million workload runs on kind = \"ba\" only"));
            }
        }
        Workload::Parbench | Workload::Thetasweep | Workload::Updates | Workload::Serve => {
            if !matches!(
                dataset,
                DatasetSpec::Generated { .. } | DatasetSpec::File { .. }
            ) {
                return Err(kind_err(
                    "bench workloads run on kind = \"generated\" or \"file\"",
                ));
            }
        }
        _ => {
            if !matches!(
                dataset,
                DatasetSpec::Paper { .. } | DatasetSpec::File { .. }
            ) {
                return Err(kind_err(
                    "paper workloads run on kind = \"paper\" or \"file\"",
                ));
            }
        }
    }

    // --- [params] -----------------------------------------------------
    let mut ps = Fields::of(&items, "params");
    let mut params = Params::default();
    // Which keys this workload accepts; anything else is UnknownKey.
    let allowed: &[&str] = match workload {
        Workload::Parbench => &["repeats", "threads"],
        Workload::Thetasweep => &["rank", "thetas", "repeats"],
        Workload::Updates => &["rank", "thetas", "batch"],
        Workload::Serve => &["thetas", "cache", "pool"],
        Workload::Million => &["thetas", "pool", "chunk_edges"],
        _ => &[],
    };
    if allowed.contains(&"rank") {
        if let Some(item) = ps.take("rank") {
            params.rank = Some(
                as_str(item)?
                    .parse::<Rank>()
                    .map_err(|_| SpecError::BadRank {
                        line: item.line,
                        value: as_str(item).unwrap_or_default().to_string(),
                    })?,
            );
        }
    }
    if allowed.contains(&"thetas") {
        if let Some(item) = ps.take("thetas") {
            params.thetas = Some(validate_thetas(item)?);
        }
    }
    if allowed.contains(&"repeats") {
        if let Some(item) = ps.take("repeats") {
            params.repeats = Some(as_usize(item)?);
        }
    }
    if allowed.contains(&"threads") {
        if let Some(item) = ps.take("threads") {
            let threads = as_usize_array(item)?;
            if threads.contains(&0) {
                return Err(bad(item, "thread counts must be at least 1"));
            }
            params.threads = Some(threads);
        }
    }
    if allowed.contains(&"batch") {
        if let Some(item) = ps.take("batch") {
            params.batch = Some(as_usize(item)?);
        }
    }
    if allowed.contains(&"cache") {
        if let Some(item) = ps.take("cache") {
            params.cache = Some(as_usize(item)?);
        }
    }
    if allowed.contains(&"pool") {
        if let Some(item) = ps.take("pool") {
            let pool = as_usize(item)?;
            if pool == 0 {
                return Err(bad(item, "pool must be at least 1"));
            }
            params.pool = Some(pool);
        }
    }
    if allowed.contains(&"chunk_edges") {
        if let Some(item) = ps.take("chunk_edges") {
            let chunk = as_usize(item)?;
            if chunk == 0 {
                return Err(bad(item, "chunk_edges must be at least 1"));
            }
            params.chunk_edges = Some(chunk);
        }
    }
    ps.finish()?;

    // --- [expect] + [gates] -------------------------------------------
    let mut gates = Fields::of(&items, "gates");
    let gate_items = gates.take_all();
    gates.finish()?;
    let mut ex = Fields::of(&items, "expect");
    let mut expect = Vec::new();
    for item in ex.take_all() {
        let value = as_f64(item)?;
        let gate = match gate_items.iter().find(|g| g.key == item.key) {
            Some(gate_item) => as_str(gate_item)?
                .parse::<Gate>()
                .map_err(|e| bad(gate_item, e))?,
            None => Gate::Exact,
        };
        expect.push(Expectation {
            path: item.key.clone(),
            value,
            gate,
        });
    }
    ex.finish()?;
    // A gate for a counter nothing expects is a typo.
    for gate_item in &gate_items {
        if !expect.iter().any(|e| e.path == gate_item.key) {
            return Err(SpecError::UnknownKey {
                line: gate_item.line,
                key: gate_item.key.clone(),
                section: "gates".to_string(),
            });
        }
    }
    expect.sort_by(|a, b| a.path.cmp(&b.path));

    Ok(ParsedSpec {
        spec: Spec {
            name,
            workload,
            tags,
            tolerance,
            dataset,
            params,
            expect,
        },
        name_line,
    })
}

// ---------------------------------------------------------------------
// Canonical serializer
// ---------------------------------------------------------------------

/// Formats a number the way the parser reads it back bit-identically:
/// integral values without a decimal point, everything else through
/// `f64`'s shortest round-trip `Display`.
fn fmt_num(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

fn fmt_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out.push('"');
    out
}

impl Spec {
    /// Renders the canonical TOML form: fixed key order, defaults
    /// omitted, `[expect]` and `[gates]` sorted by counter path.
    /// `parse(spec.to_toml())` reproduces `spec` exactly.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("name = {}\n", fmt_str(&self.name)));
        out.push_str(&format!(
            "workload = {}\n",
            fmt_str(&self.workload.to_string())
        ));
        if !self.tags.is_empty() {
            let tags: Vec<String> = self.tags.iter().map(|t| fmt_str(t)).collect();
            out.push_str(&format!("tags = [{}]\n", tags.join(", ")));
        }
        if self.tolerance != 0.0 {
            out.push_str(&format!("tolerance = {}\n", fmt_num(self.tolerance)));
        }

        out.push_str("\n[dataset]\n");
        match &self.dataset {
            DatasetSpec::Generated {
                edges,
                vertices,
                seed,
            } => {
                out.push_str("kind = \"generated\"\n");
                out.push_str(&format!("edges = {edges}\n"));
                if let Some(v) = vertices {
                    out.push_str(&format!("vertices = {v}\n"));
                }
                out.push_str(&format!("seed = {seed}\n"));
            }
            DatasetSpec::Ba {
                vertices,
                attach,
                seed,
            } => {
                out.push_str("kind = \"ba\"\n");
                out.push_str(&format!("vertices = {vertices}\n"));
                out.push_str(&format!("attach = {attach}\n"));
                out.push_str(&format!("seed = {seed}\n"));
            }
            DatasetSpec::Paper { scale, seed } => {
                out.push_str("kind = \"paper\"\n");
                let scale = match scale {
                    Scale::Tiny => "tiny",
                    Scale::Small => "small",
                    Scale::Medium => "medium",
                };
                out.push_str(&format!("scale = {}\n", fmt_str(scale)));
                out.push_str(&format!("seed = {seed}\n"));
            }
            DatasetSpec::File {
                path,
                format,
                prob_model,
            } => {
                out.push_str("kind = \"file\"\n");
                out.push_str(&format!("path = {}\n", fmt_str(path)));
                out.push_str(&format!("format = {}\n", fmt_str(&format.to_string())));
                out.push_str(&format!(
                    "prob_model = {}\n",
                    fmt_str(&prob_model.to_string())
                ));
            }
        }

        let p = &self.params;
        if *p != Params::default() {
            out.push_str("\n[params]\n");
            if let Some(rank) = p.rank {
                out.push_str(&format!("rank = {}\n", fmt_str(&rank.to_string())));
            }
            if let Some(thetas) = &p.thetas {
                let grid: Vec<String> = thetas.iter().map(|t| fmt_num(*t)).collect();
                out.push_str(&format!("thetas = [{}]\n", grid.join(", ")));
            }
            if let Some(repeats) = p.repeats {
                out.push_str(&format!("repeats = {repeats}\n"));
            }
            if let Some(threads) = &p.threads {
                let list: Vec<String> = threads.iter().map(|t| t.to_string()).collect();
                out.push_str(&format!("threads = [{}]\n", list.join(", ")));
            }
            if let Some(batch) = p.batch {
                out.push_str(&format!("batch = {batch}\n"));
            }
            if let Some(cache) = p.cache {
                out.push_str(&format!("cache = {cache}\n"));
            }
            if let Some(pool) = p.pool {
                out.push_str(&format!("pool = {pool}\n"));
            }
            if let Some(chunk) = p.chunk_edges {
                out.push_str(&format!("chunk_edges = {chunk}\n"));
            }
        }

        if !self.expect.is_empty() {
            let mut sorted: Vec<&Expectation> = self.expect.iter().collect();
            sorted.sort_by(|a, b| a.path.cmp(&b.path));
            out.push_str("\n[expect]\n");
            for e in &sorted {
                out.push_str(&format!("{} = {}\n", fmt_str(&e.path), fmt_num(e.value)));
            }
            let gated: Vec<&&Expectation> =
                sorted.iter().filter(|e| e.gate != Gate::Exact).collect();
            if !gated.is_empty() {
                out.push_str("\n[gates]\n");
                for e in gated {
                    out.push_str(&format!(
                        "{} = {}\n",
                        fmt_str(&e.path),
                        fmt_str(&e.gate.to_string())
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r#"
# A full-surface scenario.
name = "thetasweep-truss-smoke"
workload = "thetasweep"
tags = ["bench", "sweep"]
tolerance = 0.05

[dataset]
kind = "generated"
edges = 4000
vertices = 160
seed = 7

[params]
rank = "truss"
thetas = [0.05, 0.1, 0.3]
repeats = 1

[expect]
"sweep.support_builds" = 1
"counts.triangles" = 12345   # counts survive the gate too

[gates]
"counts.triangles" = "lower-is-better"
"#;

    #[test]
    fn full_spec_parses_every_field() {
        let parsed = parse(FULL).unwrap();
        let spec = parsed.spec;
        assert_eq!(spec.name, "thetasweep-truss-smoke");
        assert_eq!(parsed.name_line, 3);
        assert_eq!(spec.workload, Workload::Thetasweep);
        assert_eq!(spec.tags, vec!["bench", "sweep"]);
        assert_eq!(spec.tolerance, 0.05);
        assert_eq!(
            spec.dataset,
            DatasetSpec::Generated {
                edges: 4000,
                vertices: Some(160),
                seed: 7
            }
        );
        assert_eq!(spec.params.rank, Some(Rank::Truss));
        assert_eq!(spec.params.thetas, Some(vec![0.05, 0.1, 0.3]));
        assert_eq!(spec.params.repeats, Some(1));
        // Expectations come out sorted by path, with gates attached.
        assert_eq!(spec.expect.len(), 2);
        assert_eq!(spec.expect[0].path, "counts.triangles");
        assert_eq!(spec.expect[0].gate, Gate::LowerIsBetter);
        assert_eq!(spec.expect[1].path, "sweep.support_builds");
        assert_eq!(spec.expect[1].gate, Gate::Exact);
    }

    #[test]
    fn canonical_form_round_trips_bit_identically() {
        let first = parse(FULL).unwrap().spec;
        let rendered = first.to_toml();
        let second = parse(&rendered).unwrap().spec;
        assert_eq!(first, second);
        assert_eq!(rendered, second.to_toml());
    }

    #[test]
    fn unknown_key_errors_carry_section_and_line() {
        let text = "name = \"x\"\nworkload = \"parbench\"\nbogus = 1\n\n[dataset]\nkind = \"generated\"\nedges = 100\n";
        assert_eq!(
            parse(text).unwrap_err(),
            SpecError::UnknownKey {
                line: 3,
                key: "bogus".to_string(),
                section: "top".to_string()
            }
        );
        let text = "name = \"x\"\nworkload = \"parbench\"\n\n[dataset]\nkind = \"generated\"\nedges = 100\n\n[params]\nbatch = 4\n";
        // batch is an updates param; parbench does not accept it.
        assert_eq!(
            parse(text).unwrap_err(),
            SpecError::UnknownKey {
                line: 9,
                key: "batch".to_string(),
                section: "params".to_string()
            }
        );
    }

    #[test]
    fn bad_rank_and_unknown_workload_are_typed() {
        let text = "name = \"x\"\nworkload = \"frobnicate\"\n\n[dataset]\nkind = \"generated\"\nedges = 100\n";
        assert_eq!(
            parse(text).unwrap_err(),
            SpecError::UnknownWorkload {
                line: 2,
                value: "frobnicate".to_string()
            }
        );
        let text = "name = \"x\"\nworkload = \"thetasweep\"\n\n[dataset]\nkind = \"generated\"\nedges = 100\n\n[params]\nrank = \"quux\"\n";
        assert_eq!(
            parse(text).unwrap_err(),
            SpecError::BadRank {
                line: 9,
                value: "quux".to_string()
            }
        );
    }

    #[test]
    fn unsorted_grid_and_bad_tolerance_are_typed() {
        let text = "name = \"x\"\nworkload = \"thetasweep\"\n\n[dataset]\nkind = \"generated\"\nedges = 100\n\n[params]\nthetas = [0.5, 0.1]\n";
        assert_eq!(
            parse(text).unwrap_err(),
            SpecError::UnsortedThetaGrid { line: 9 }
        );
        let text = "name = \"x\"\nworkload = \"parbench\"\ntolerance = 1.5\n\n[dataset]\nkind = \"generated\"\nedges = 100\n";
        assert_eq!(
            parse(text).unwrap_err(),
            SpecError::ToleranceOutOfRange {
                line: 3,
                value: 1.5
            }
        );
    }

    #[test]
    fn duplicate_keys_and_sections_are_typed() {
        let text = "name = \"x\"\nname = \"y\"\n";
        assert_eq!(
            parse(text).unwrap_err(),
            SpecError::DuplicateKey {
                line: 2,
                key: "name".to_string(),
                section: "top".to_string()
            }
        );
        let text =
            "name = \"x\"\nworkload = \"parbench\"\n\n[dataset]\nkind = \"generated\"\nedges = 1\n\n[dataset]\n";
        assert_eq!(
            parse(text).unwrap_err(),
            SpecError::DuplicateKey {
                line: 8,
                key: "[dataset]".to_string(),
                section: "dataset".to_string()
            }
        );
    }

    #[test]
    fn workload_dataset_compatibility_is_enforced() {
        // million on a G(n, m) graph: refused.
        let text = "name = \"x\"\nworkload = \"million\"\n\n[dataset]\nkind = \"generated\"\nedges = 100\n";
        assert!(matches!(
            parse(text).unwrap_err(),
            SpecError::BadValue { line: 5, .. }
        ));
        // paper experiment on a BA graph: refused.
        let text =
            "name = \"x\"\nworkload = \"table1\"\n\n[dataset]\nkind = \"ba\"\nvertices = 100\n";
        assert!(matches!(
            parse(text).unwrap_err(),
            SpecError::BadValue { line: 5, .. }
        ));
    }

    #[test]
    fn gates_must_reference_expected_counters() {
        let text = "name = \"x\"\nworkload = \"parbench\"\n\n[dataset]\nkind = \"generated\"\nedges = 100\n\n[gates]\n\"peel.dp_calls\" = \"lower-is-better\"\n";
        assert_eq!(
            parse(text).unwrap_err(),
            SpecError::UnknownKey {
                line: 9,
                key: "peel.dp_calls".to_string(),
                section: "gates".to_string()
            }
        );
    }

    #[test]
    fn missing_required_fields_are_typed() {
        assert_eq!(
            parse("workload = \"parbench\"\n").unwrap_err(),
            SpecError::MissingField {
                section: "top".to_string(),
                key: "name".to_string()
            }
        );
        let text = "name = \"x\"\nworkload = \"parbench\"\n";
        assert_eq!(
            parse(text).unwrap_err(),
            SpecError::MissingField {
                section: "dataset".to_string(),
                key: "kind".to_string()
            }
        );
        let text = "name = \"x\"\nworkload = \"parbench\"\n\n[dataset]\nkind = \"generated\"\n";
        assert_eq!(
            parse(text).unwrap_err(),
            SpecError::MissingField {
                section: "dataset".to_string(),
                key: "edges".to_string()
            }
        );
    }

    #[test]
    fn comments_and_strings_interact_correctly() {
        // '#' inside a string is content; after it, comment.
        let text = "name = \"a#b\" # trailing\nworkload = \"parbench\"\n\n[dataset]\nkind = \"generated\"\nedges = 100\n";
        // '#' is not in the name alphabet → BadValue, proving the string
        // survived comment stripping intact.
        assert!(matches!(
            parse(text).unwrap_err(),
            SpecError::BadValue { line: 1, .. }
        ));
    }

    #[test]
    fn syntax_errors_carry_lines() {
        assert_eq!(
            parse("name \"x\"\n").unwrap_err(),
            SpecError::Syntax {
                line: 1,
                message: "expected '=' after key 'name'".to_string()
            }
        );
        assert!(matches!(
            parse("name = \"x\nworkload = \"parbench\"\n").unwrap_err(),
            SpecError::Syntax { line: 1, .. }
        ));
        assert!(matches!(
            parse("name = nope\n").unwrap_err(),
            SpecError::Syntax { line: 1, .. }
        ));
        assert!(matches!(
            parse("[frobnicate]\n").unwrap_err(),
            SpecError::UnknownSection { line: 1, .. }
        ));
    }

    #[test]
    fn file_datasets_parse_formats_and_models() {
        let text = "name = \"x\"\nworkload = \"parbench\"\n\n[dataset]\nkind = \"file\"\npath = \"data/tiny.txt\"\nformat = \"konect\"\nprob_model = \"const:0.5\"\n";
        let spec = parse(text).unwrap().spec;
        assert_eq!(
            spec.dataset,
            DatasetSpec::File {
                path: "data/tiny.txt".to_string(),
                format: InputFormat::Konect,
                prob_model: EdgeProbabilityModel::Constant(0.5),
            }
        );
    }
}
