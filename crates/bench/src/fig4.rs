//! Figure 4 — running time of the local nucleus decomposition, exact DP
//! versus the hybrid statistical approximation (AP), for θ ∈ {0.1..0.5}.

use nd_datasets::PaperDataset;
use nucleus::{LocalConfig, LocalNucleusDecomposition, SupportStructure};

use crate::runner::{format_table, ExperimentContext, Timing};

/// Thresholds swept by the figure.
pub const THETAS: [f64; 5] = [0.1, 0.2, 0.3, 0.4, 0.5];

/// One measurement: a dataset, a threshold, and the two running times.
#[derive(Debug, Clone)]
pub struct Fig4Point {
    /// Dataset name.
    pub dataset: String,
    /// Threshold θ.
    pub theta: f64,
    /// Seconds taken by the exact DP algorithm.
    pub dp_seconds: f64,
    /// Seconds taken by the hybrid approximation algorithm.
    pub ap_seconds: f64,
    /// Largest ℓ-nucleusness found (same for both when AP is accurate).
    pub max_score_dp: u32,
    /// Largest ℓ-nucleusness found by AP.
    pub max_score_ap: u32,
}

/// The full Figure 4 series.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// One point per (dataset, θ) pair.
    pub points: Vec<Fig4Point>,
}

/// Runs the experiment over the given datasets (all six by default).
pub fn run(ctx: &ExperimentContext, datasets: &[PaperDataset]) -> Fig4 {
    let mut points = Vec::new();
    for &ds in datasets {
        let graph = ctx.dataset(ds);
        // The support structure (triangle + 4-clique enumeration) is shared
        // by both algorithms and all θ, mirroring the paper's setup where
        // enumeration is part of preprocessing.
        let support = SupportStructure::build(&graph);
        for &theta in &THETAS {
            let (dp, dp_time) = Timing::measure(|| {
                LocalNucleusDecomposition::with_support(support.clone(), &LocalConfig::exact(theta))
                    .expect("valid config")
            });
            let (ap, ap_time) = Timing::measure(|| {
                LocalNucleusDecomposition::with_support(
                    support.clone(),
                    &LocalConfig::approximate(theta),
                )
                .expect("valid config")
            });
            points.push(Fig4Point {
                dataset: ctx.dataset_name(ds),
                theta,
                dp_seconds: dp_time.seconds(),
                ap_seconds: ap_time.seconds(),
                max_score_dp: dp.max_score(),
                max_score_ap: ap.max_score(),
            });
        }
    }
    Fig4 { points }
}

impl Fig4 {
    /// Formats the series as a table (one row per dataset × θ).
    pub fn format(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.dataset.to_string(),
                    format!("{:.1}", p.theta),
                    format!("{:.3}", p.dp_seconds),
                    format!("{:.3}", p.ap_seconds),
                    format!("{:.2}x", p.dp_seconds / p.ap_seconds.max(1e-9)),
                    p.max_score_dp.to_string(),
                    p.max_score_ap.to_string(),
                ]
            })
            .collect();
        format!(
            "Figure 4: local decomposition running time, DP vs AP\n{}",
            format_table(
                &["Graph", "theta", "DP(s)", "AP(s)", "speedup", "kmax(DP)", "kmax(AP)"],
                &rows
            )
        )
    }

    /// Checks the qualitative claims of the figure: AP is at least as fast
    /// as DP on the large datasets, and running times do not increase as θ
    /// grows.  Returns human-readable violations (empty = all good).
    pub fn check_shape(&self) -> Vec<String> {
        let mut violations = Vec::new();
        // Group by dataset and check monotone-ish behaviour in θ: allow a
        // 25% tolerance since small absolute times are noisy.
        let mut by_dataset: std::collections::HashMap<&str, Vec<&Fig4Point>> =
            std::collections::HashMap::new();
        for p in &self.points {
            by_dataset.entry(p.dataset.as_str()).or_default().push(p);
        }
        for (ds, points) in by_dataset {
            let total_dp: f64 = points.iter().map(|p| p.dp_seconds).sum();
            let total_ap: f64 = points.iter().map(|p| p.ap_seconds).sum();
            if total_ap > total_dp * 1.25 {
                violations.push(format!(
                    "{ds}: AP total {total_ap:.3}s slower than DP total {total_dp:.3}s"
                ));
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_datasets::Scale;

    #[test]
    fn runs_on_one_tiny_dataset() {
        let ctx = ExperimentContext::new(Scale::Tiny, 3);
        let fig = run(&ctx, &[PaperDataset::Krogan]);
        assert_eq!(fig.points.len(), THETAS.len());
        for p in &fig.points {
            assert!(p.dp_seconds >= 0.0 && p.ap_seconds >= 0.0);
            // AP must agree with DP on the maximum score on these small
            // clean datasets.
            assert!(
                (p.max_score_dp as i64 - p.max_score_ap as i64).abs() <= 1,
                "theta {}: {} vs {}",
                p.theta,
                p.max_score_dp,
                p.max_score_ap
            );
        }
        let text = fig.format();
        assert!(text.contains("Figure 4"));
        assert!(text.contains("krogan"));
    }
}
