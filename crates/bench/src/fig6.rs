//! Figure 6 — average relative error of the statistical approximations
//! under the conditions they are designed for, at θ = 0.3:
//!
//! * **6a** — Binomial vs CLT vs Poisson when all `Pr(E_i) ∈ (0, 0.1]`,
//!   for `c ∈ {25, 50, 100}`.
//! * **6b** — Poisson vs Translated Poisson for `c = 50` as the range of
//!   `Pr(E_i)` grows from `(0, 0.1]` to `(0, 1]`.
//! * **6c** — Binomial when the variance ratio is close to 1 (probabilities
//!   close to each other), for `c ∈ {25, 50, 100}`.
//!
//! Relative error is measured on the quantity the decomposition actually
//! consumes: the largest `k` with `Pr[ζ ≥ k] ≥ θ` (the probabilistic
//! support score), comparing each approximation against the exact DP.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use nucleus::approx::{max_k_with_method, ApproxMethod};
use nucleus::local::dp;

use crate::runner::{format_table, ExperimentContext};

/// Threshold fixed by the figure.
pub const THETA: f64 = 0.3;
/// Number of sampled synthetic triangles per configuration.
pub const SAMPLES: usize = 1000;

/// One cell: a method, a configuration label, and the mean relative error.
#[derive(Debug, Clone)]
pub struct Fig6Cell {
    /// Which sub-figure the cell belongs to (`"6a"`, `"6b"`, `"6c"`).
    pub panel: &'static str,
    /// Configuration label (e.g. `c=50` or the probability range).
    pub config: String,
    /// Approximation method.
    pub method: ApproxMethod,
    /// Mean relative error of the support score vs DP.
    pub relative_error: f64,
}

/// The full Figure 6.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// All cells across the three panels.
    pub cells: Vec<Fig6Cell>,
}

fn mean_relative_error<R: Rng>(
    rng: &mut R,
    method: ApproxMethod,
    c: usize,
    prob_low: f64,
    prob_high: f64,
    samples: usize,
) -> f64 {
    let mut total = 0.0f64;
    let mut counted = 0usize;
    for _ in 0..samples {
        let probs: Vec<f64> = (0..c)
            .map(|_| rng.gen_range(prob_low..=prob_high))
            .collect();
        let exact = dp::max_k(1.0, &probs, THETA);
        if exact == 0 {
            continue;
        }
        let approx = max_k_with_method(method, 1.0, &probs, THETA);
        total += (approx as f64 - exact as f64).abs() / exact as f64;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Like [`mean_relative_error`] but with probabilities clustered around a
/// random centre (so the variance ratio is close to 1 — panel 6c).
fn mean_relative_error_clustered<R: Rng>(
    rng: &mut R,
    method: ApproxMethod,
    c: usize,
    samples: usize,
) -> f64 {
    let mut total = 0.0f64;
    let mut counted = 0usize;
    for _ in 0..samples {
        let centre: f64 = rng.gen_range(0.15..0.85);
        let spread = 0.02f64;
        let probs: Vec<f64> = (0..c)
            .map(|_| (centre + rng.gen_range(-spread..=spread)).clamp(0.01, 0.99))
            .collect();
        let exact = dp::max_k(1.0, &probs, THETA);
        if exact == 0 {
            continue;
        }
        let approx = max_k_with_method(method, 1.0, &probs, THETA);
        total += (approx as f64 - exact as f64).abs() / exact as f64;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Runs all three panels.
pub fn run(ctx: &ExperimentContext, samples: usize) -> Fig6 {
    let mut rng = ChaCha8Rng::seed_from_u64(ctx.seed.wrapping_add(0x6f6f));
    let mut cells = Vec::new();

    // Panel 6a: small Pr(E_i), c in {25, 50, 100}.
    for &c in &[25usize, 50, 100] {
        for method in [
            ApproxMethod::Binomial,
            ApproxMethod::Clt,
            ApproxMethod::Poisson,
        ] {
            let err = mean_relative_error(&mut rng, method, c, 0.001, 0.1, samples);
            cells.push(Fig6Cell {
                panel: "6a",
                config: format!("c={c}"),
                method,
                relative_error: err,
            });
        }
    }

    // Panel 6b: c = 50, growing probability ranges.
    for &high in &[0.1f64, 0.25, 0.5, 1.0] {
        for method in [ApproxMethod::Poisson, ApproxMethod::TranslatedPoisson] {
            let err = mean_relative_error(&mut rng, method, 50, 0.001, high, samples);
            cells.push(Fig6Cell {
                panel: "6b",
                config: format!("Pr(Ei)<={high}"),
                method,
                relative_error: err,
            });
        }
    }

    // Panel 6c: probabilities close to each other, c in {25, 50, 100}.
    for &c in &[25usize, 50, 100] {
        let err = mean_relative_error_clustered(&mut rng, ApproxMethod::Binomial, c, samples);
        cells.push(Fig6Cell {
            panel: "6c",
            config: format!("c={c}"),
            method: ApproxMethod::Binomial,
            relative_error: err,
        });
    }

    Fig6 { cells }
}

impl Fig6 {
    /// Formats the three panels as one table.
    pub fn format(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                vec![
                    c.panel.to_string(),
                    c.config.clone(),
                    c.method.to_string(),
                    format!("{:.4}", c.relative_error),
                ]
            })
            .collect();
        format!(
            "Figure 6: average relative error of the approximations (theta = {THETA})\n{}",
            format_table(&["panel", "config", "method", "rel. error"], &rows)
        )
    }

    /// Qualitative checks mirroring the paper's observations:
    /// Poisson/Binomial beat CLT for small probabilities (6a), the
    /// Translated Poisson is at least as good as the plain Poisson for
    /// large probabilities (6b), and the Binomial error stays small in its
    /// regime (6c).  Returns the violated claims.
    pub fn check_shape(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let get = |panel: &str, config: &str, method: ApproxMethod| -> Option<f64> {
            self.cells
                .iter()
                .find(|c| c.panel == panel && c.config == config && c.method == method)
                .map(|c| c.relative_error)
        };
        for c in ["c=25", "c=50", "c=100"] {
            if let (Some(p), Some(clt)) = (
                get("6a", c, ApproxMethod::Poisson),
                get("6a", c, ApproxMethod::Clt),
            ) {
                if p > clt + 0.02 {
                    violations.push(format!(
                        "6a {c}: Poisson ({p:.3}) worse than CLT ({clt:.3})"
                    ));
                }
            }
        }
        if let (Some(p), Some(tp)) = (
            get("6b", "Pr(Ei)<=1", ApproxMethod::Poisson),
            get("6b", "Pr(Ei)<=1", ApproxMethod::TranslatedPoisson),
        ) {
            if tp > p + 0.02 {
                violations.push(format!(
                    "6b full range: Translated Poisson ({tp:.3}) worse than Poisson ({p:.3})"
                ));
            }
        }
        for c in self.cells.iter().filter(|c| c.panel == "6c") {
            if c.relative_error > 0.05 {
                violations.push(format!(
                    "6c {}: Binomial error {:.3} above 0.05",
                    c.config, c.relative_error
                ));
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_datasets::Scale;

    #[test]
    fn shapes_match_the_paper_with_small_sample_counts() {
        let ctx = ExperimentContext::new(Scale::Tiny, 2);
        let fig = run(&ctx, 120);
        assert_eq!(fig.cells.len(), 9 + 8 + 3);
        let violations = fig.check_shape();
        assert!(violations.is_empty(), "{violations:?}");
        assert!(fig.format().contains("Figure 6"));
    }
}
