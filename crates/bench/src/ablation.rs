//! Ablation studies beyond the paper's figures.
//!
//! * **Sample-count ablation** — how the Monte-Carlo estimate of
//!   `Pr(X_{H,△,g} ≥ k)` converges to the exact value as the number of
//!   sampled worlds grows, compared against the Hoeffding bound that
//!   Algorithms 2 and 3 rely on.
//! * **Scoring-method cost** — the cost of a single support-score query
//!   under each approximation as the clique count `c` grows, the design
//!   choice motivating Section 5.3 (DP is `O(c²)`, every approximation is
//!   `O(c)`).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use nucleus::approx::{max_k_with_method, ApproxMethod};
use nucleus::exact::exact_global_tail;
use nucleus::sampling;
use ugraph::{GraphBuilder, Triangle, UncertainGraph};

use crate::runner::{format_table, ExperimentContext, Timing};

/// One row of the sample-count ablation.
#[derive(Debug, Clone)]
pub struct SampleAblationRow {
    /// Number of sampled possible worlds.
    pub num_samples: usize,
    /// Absolute estimation error versus the exact oracle.
    pub abs_error: f64,
    /// The Hoeffding ε guaranteed (with δ = 0.1) at this sample count.
    pub hoeffding_epsilon: f64,
}

/// Result of the sample-count ablation.
#[derive(Debug, Clone)]
pub struct SampleAblation {
    /// The exact probability being estimated.
    pub exact: f64,
    /// One row per sample count.
    pub rows: Vec<SampleAblationRow>,
}

fn ablation_graph() -> (UncertainGraph, Triangle) {
    // K5 with mixed probabilities: small enough for the exact oracle,
    // rich enough that the global indicator is non-trivial.
    let mut b = GraphBuilder::new();
    let probs = [0.9, 0.8, 0.7, 0.9, 0.6, 0.8, 0.7, 0.9, 0.8, 0.7];
    let mut i = 0;
    for u in 0..5u32 {
        for v in (u + 1)..5u32 {
            b.add_edge(u, v, probs[i]).unwrap();
            i += 1;
        }
    }
    (b.build(), Triangle::new(0, 1, 2))
}

/// Runs the sample-count ablation for `k = 1`.
pub fn run_sample_ablation(ctx: &ExperimentContext, sample_counts: &[usize]) -> SampleAblation {
    let (graph, triangle) = ablation_graph();
    let exact = exact_global_tail(&graph, &triangle, 1).expect("small graph");
    let [a, b, c] = triangle.vertices();
    let rows = sample_counts
        .iter()
        .map(|&n| {
            let estimate = sampling::estimate_probability(&graph, n, ctx.seed, |world| {
                world.contains_triangle(&graph, a, b, c)
                    && detdecomp::is_k_nucleus_lenient(&world.materialize(&graph), 1)
            });
            // Invert the Hoeffding bound n = ln(2/δ)/(2ε²) at δ = 0.1.
            let eps = ((2.0f64 / 0.1).ln() / (2.0 * n as f64)).sqrt();
            SampleAblationRow {
                num_samples: n,
                abs_error: (estimate - exact).abs(),
                hoeffding_epsilon: eps,
            }
        })
        .collect();
    SampleAblation { exact, rows }
}

impl SampleAblation {
    /// Formats the ablation as a table.
    pub fn format(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.num_samples.to_string(),
                    format!("{:.4}", r.abs_error),
                    format!("{:.4}", r.hoeffding_epsilon),
                ]
            })
            .collect();
        format!(
            "Ablation: Monte-Carlo samples vs estimation error (exact = {:.4})\n{}",
            self.exact,
            format_table(&["samples", "abs error", "Hoeffding eps (d=0.1)"], &rows)
        )
    }
}

/// One row of the scoring-cost ablation.
#[derive(Debug, Clone)]
pub struct ScoringCostRow {
    /// Clique count `c` of the synthetic triangle.
    pub c: usize,
    /// Method measured.
    pub method: ApproxMethod,
    /// Nanoseconds per score query (averaged).
    pub nanos_per_query: f64,
}

/// Runs the scoring-cost ablation.
pub fn run_scoring_cost(
    ctx: &ExperimentContext,
    counts: &[usize],
    repeats: usize,
) -> Vec<ScoringCostRow> {
    let mut rng = ChaCha8Rng::seed_from_u64(ctx.seed);
    let mut rows = Vec::new();
    for &c in counts {
        let probs: Vec<f64> = (0..c).map(|_| rng.gen_range(0.05..0.95)).collect();
        for method in [
            ApproxMethod::DynamicProgramming,
            ApproxMethod::Poisson,
            ApproxMethod::TranslatedPoisson,
            ApproxMethod::Binomial,
            ApproxMethod::Clt,
        ] {
            let (_, t) = Timing::measure(|| {
                let mut acc = 0u32;
                for _ in 0..repeats {
                    acc = acc.wrapping_add(max_k_with_method(method, 0.9, &probs, 0.3));
                }
                acc
            });
            rows.push(ScoringCostRow {
                c,
                method,
                nanos_per_query: t.elapsed.as_nanos() as f64 / repeats as f64,
            });
        }
    }
    rows
}

/// Formats the scoring-cost ablation.
pub fn format_scoring_cost(rows: &[ScoringCostRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.c.to_string(),
                r.method.to_string(),
                format!("{:.0}", r.nanos_per_query),
            ]
        })
        .collect();
    format!(
        "Ablation: per-query scoring cost by method\n{}",
        format_table(&["c", "method", "ns/query"], &table_rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_datasets::Scale;

    #[test]
    fn sample_ablation_error_shrinks_with_samples() {
        let ctx = ExperimentContext::new(Scale::Tiny, 21);
        let ab = run_sample_ablation(&ctx, &[20, 200, 2000]);
        assert_eq!(ab.rows.len(), 3);
        assert!(ab.exact > 0.0 && ab.exact < 1.0);
        // Errors must be within the Hoeffding bound at the largest count
        // (overwhelmingly likely) and the bound itself must shrink.
        assert!(ab.rows[2].abs_error <= ab.rows[2].hoeffding_epsilon + 0.05);
        assert!(ab.rows[2].hoeffding_epsilon < ab.rows[0].hoeffding_epsilon);
        assert!(ab.format().contains("Ablation"));
    }

    #[test]
    fn scoring_cost_covers_all_methods() {
        let ctx = ExperimentContext::new(Scale::Tiny, 22);
        let rows = run_scoring_cost(&ctx, &[32, 128], 50);
        assert_eq!(rows.len(), 2 * 5);
        assert!(rows.iter().all(|r| r.nanos_per_query >= 0.0));
        let text = format_scoring_cost(&rows);
        assert!(text.contains("ns/query"));
        assert!(text.contains("DP"));
    }
}
