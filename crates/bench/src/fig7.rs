//! Figure 7 — properties of the ℓ-(k,θ)-nuclei of the flickr-like dataset
//! as `k` varies (θ = 0.3): average probabilistic density, average
//! probabilistic clustering coefficient, average number of edges per
//! nucleus, and the number of nuclei.

use nd_datasets::PaperDataset;
use nucleus::{LocalConfig, LocalNucleusDecomposition};
use ugraph::metrics::{probabilistic_clustering_coefficient, probabilistic_density};

use crate::runner::{format_table, ExperimentContext};

/// The threshold fixed by the figure.
pub const THETA: f64 = 0.3;

/// Statistics of the ℓ-(k,θ)-nuclei at one value of `k`.
#[derive(Debug, Clone)]
pub struct Fig7Point {
    /// The nucleus parameter `k`.
    pub k: u32,
    /// Average PD over the nuclei.
    pub avg_pd: f64,
    /// Average PCC over the nuclei.
    pub avg_pcc: f64,
    /// Average number of edges per nucleus.
    pub avg_edges: f64,
    /// Number of ℓ-(k,θ)-nuclei.
    pub num_nuclei: usize,
}

/// The full Figure 7 series.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// Dataset the series was computed on.
    pub dataset: String,
    /// One point per `k` from 1 to k_max.
    pub points: Vec<Fig7Point>,
}

/// Runs the sweep on the given dataset (flickr in the paper).
pub fn run(ctx: &ExperimentContext, dataset: PaperDataset) -> Fig7 {
    let graph = ctx.dataset(dataset);
    let local = LocalNucleusDecomposition::compute(&graph, &LocalConfig::approximate(THETA))
        .expect("valid config");
    let mut points = Vec::new();
    for k in 1..=local.max_score() {
        let nuclei = local.k_nuclei(&graph, k);
        if nuclei.is_empty() {
            continue;
        }
        let n = nuclei.len() as f64;
        let avg_pd = nuclei
            .iter()
            .map(|nu| probabilistic_density(nu.subgraph.graph()))
            .sum::<f64>()
            / n;
        let avg_pcc = nuclei
            .iter()
            .map(|nu| probabilistic_clustering_coefficient(nu.subgraph.graph()))
            .sum::<f64>()
            / n;
        let avg_edges = nuclei.iter().map(|nu| nu.num_edges() as f64).sum::<f64>() / n;
        points.push(Fig7Point {
            k,
            avg_pd,
            avg_pcc,
            avg_edges,
            num_nuclei: nuclei.len(),
        });
    }
    Fig7 {
        dataset: ctx.dataset_name(dataset),
        points,
    }
}

impl Fig7 {
    /// Formats the series as a table.
    pub fn format(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.k.to_string(),
                    format!("{:.3}", p.avg_pd),
                    format!("{:.3}", p.avg_pcc),
                    format!("{:.1}", p.avg_edges),
                    p.num_nuclei.to_string(),
                ]
            })
            .collect();
        format!(
            "Figure 7: ℓ-(k,{THETA})-nuclei of {} as k varies\n{}",
            self.dataset,
            format_table(&["k", "avg PD", "avg PCC", "avg |E|", "#nuclei"], &rows)
        )
    }

    /// Qualitative claims of the figure: PD and PCC are high (> 0.5 in the
    /// reproduction) and weakly increase with k, while the number of
    /// nuclei weakly decreases.  Returns violations.
    pub fn check_shape(&self) -> Vec<String> {
        let mut violations = Vec::new();
        if self.points.is_empty() {
            violations.push("no nuclei found at any k".to_string());
            return violations;
        }
        let first = &self.points[0];
        let last = &self.points[self.points.len() - 1];
        if last.avg_pd + 0.05 < first.avg_pd {
            violations.push(format!(
                "avg PD decreases from {:.3} (k={}) to {:.3} (k={})",
                first.avg_pd, first.k, last.avg_pd, last.k
            ));
        }
        if last.num_nuclei > first.num_nuclei {
            violations.push(format!(
                "#nuclei increases from {} to {}",
                first.num_nuclei, last.num_nuclei
            ));
        }
        for p in &self.points {
            if p.avg_pd < 0.3 {
                violations.push(format!(
                    "k={}: avg PD {:.3} unexpectedly low",
                    p.k, p.avg_pd
                ));
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_datasets::Scale;

    #[test]
    fn flickr_series_has_expected_shape() {
        let ctx = ExperimentContext::new(Scale::Tiny, 11);
        let fig = run(&ctx, PaperDataset::Flickr);
        assert!(!fig.points.is_empty());
        let violations = fig.check_shape();
        assert!(violations.is_empty(), "{violations:?}");
        assert!(fig.format().contains("Figure 7"));
    }
}
