//! Figure 5 — running time of the (fully) global (FG) and weakly-global
//! (WG) decomposition algorithms at θ = 0.001.

use nd_datasets::PaperDataset;
use nucleus::{
    global::global_nuclei_with_local, weakly_global::weakly_global_nuclei_with_local, GlobalConfig,
    LocalConfig, LocalNucleusDecomposition, SamplingConfig,
};

use crate::runner::{format_table, ExperimentContext, Timing};

/// The threshold used by the paper for the global experiments.
pub const THETA: f64 = 0.001;

/// One measurement: a dataset and the two running times.
#[derive(Debug, Clone)]
pub struct Fig5Point {
    /// Dataset name.
    pub dataset: String,
    /// The `k` the decompositions were run for.
    pub k: u32,
    /// Seconds taken by the fully-global algorithm (Algorithm 2).
    pub fg_seconds: f64,
    /// Seconds taken by the weakly-global algorithm (Algorithm 3).
    pub wg_seconds: f64,
    /// Number of g-(k,θ)-nuclei found.
    pub fg_nuclei: usize,
    /// Number of w-(k,θ)-nuclei found.
    pub wg_nuclei: usize,
}

/// The full Figure 5 series.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// One point per dataset.
    pub points: Vec<Fig5Point>,
}

/// Runs FG and WG on each dataset.  `k` defaults to 2 (a mid-range value
/// at the reproduction's scale); `num_samples` mirrors the paper's n = 200.
pub fn run(ctx: &ExperimentContext, datasets: &[PaperDataset], k: u32, num_samples: usize) -> Fig5 {
    let mut points = Vec::new();
    for &ds in datasets {
        let graph = ctx.dataset(ds);
        let local = LocalNucleusDecomposition::compute(&graph, &LocalConfig::approximate(THETA))
            .expect("valid config");
        let config = GlobalConfig::new(THETA).with_sampling(
            SamplingConfig::default()
                .with_num_samples(num_samples)
                .with_seed(ctx.seed),
        );
        let (fg, fg_time) = Timing::measure(|| {
            global_nuclei_with_local(&graph, k, &config, &local).expect("valid config")
        });
        let (wg, wg_time) = Timing::measure(|| {
            weakly_global_nuclei_with_local(&graph, k, &config, &local).expect("valid config")
        });
        points.push(Fig5Point {
            dataset: ctx.dataset_name(ds),
            k,
            fg_seconds: fg_time.seconds(),
            wg_seconds: wg_time.seconds(),
            fg_nuclei: fg.len(),
            wg_nuclei: wg.len(),
        });
    }
    Fig5 { points }
}

impl Fig5 {
    /// Formats the series as a table.
    pub fn format(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.dataset.to_string(),
                    p.k.to_string(),
                    format!("{:.3}", p.fg_seconds),
                    format!("{:.3}", p.wg_seconds),
                    p.fg_nuclei.to_string(),
                    p.wg_nuclei.to_string(),
                ]
            })
            .collect();
        format!(
            "Figure 5: running time of fully-global (FG) vs weakly-global (WG), theta = {THETA}\n{}",
            format_table(&["Graph", "k", "FG(s)", "WG(s)", "#g-nuclei", "#w-nuclei"], &rows)
        )
    }

    /// The paper observes WG is generally faster than FG; returns the
    /// datasets where FG was faster by more than 25%.
    pub fn check_shape(&self) -> Vec<String> {
        self.points
            .iter()
            .filter(|p| p.fg_seconds * 1.25 < p.wg_seconds)
            .map(|p| {
                format!(
                    "{}: FG {:.3}s faster than WG {:.3}s",
                    p.dataset, p.fg_seconds, p.wg_seconds
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_datasets::Scale;

    #[test]
    fn runs_on_one_tiny_dataset() {
        let ctx = ExperimentContext::new(Scale::Tiny, 3);
        let fig = run(&ctx, &[PaperDataset::Krogan], 2, 40);
        assert_eq!(fig.points.len(), 1);
        let p = &fig.points[0];
        assert!(p.fg_seconds >= 0.0 && p.wg_seconds >= 0.0);
        // At theta = 0.001 the dense planted complexes should survive in
        // at least the weakly-global decomposition.
        assert!(p.wg_nuclei >= 1);
        assert!(fig.format().contains("Figure 5"));
    }
}
