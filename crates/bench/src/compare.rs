//! Diffing of two `bench-parallel/*` reports with a deterministic
//! regression gate (`experiments bench-compare`).
//!
//! Wall-clock times are far too noisy to gate a CI job on, but the
//! benchmark reports also carry **deterministic** counters — triangle and
//! 4-clique counts, the peeling engine's `dp_calls`, the snapshot-cache
//! `reload_speedup` — that are pure functions of the graph and the
//! algorithm.  `bench-compare OLD.json NEW.json` prints every tracked
//! value side by side and exits nonzero when a *gated* counter regresses
//! beyond `--tolerance` (a relative fraction, default 0):
//!
//! * `counts.triangles`, `counts.four_cliques` — must match within the
//!   tolerance, in *both* directions (drift either way means the
//!   algorithm changed behaviour; run at `--tolerance 0` — the default —
//!   to demand exact equality);
//! * `peel.dp_calls` — must not increase (the deferred engine's work);
//! * `source.ingest.reload_speedup` — must not decrease.
//!
//! Schema bumps are handled gracefully: comparing a `bench-parallel/v2`
//! baseline against a v3 report simply skips the counters the old file
//! does not carry, with a note.  Wall times are always printed, never
//! gated.
//!
//! Sweep reports carry a `rank` field since `bench-parallel/v5` (core,
//! truss or nucleus).  Reports that predate it are treated as nucleus
//! sweeps, with a note; comparing reports of *different* ranks is
//! refused outright — their counters describe different algorithms, so
//! any verdict would be meaningless.
//!
//! `bench-serve/*` reports (`experiments serve --oneshot`) gate the
//! query service's deterministic [`nd_server::StatsSnapshot`] counters —
//! all Exact, since the scripted session is fixed.  Comparing across
//! schema *families* (a parallel bench against a serve smoke) is
//! refused for the same reason as cross-rank compares.
//!
//! `bench-updates/*` reports (`experiments updates`) gate the
//! incremental-maintenance counters: batch composition and repair sizes
//! are Exact, `repair.repair_dp_calls` must not increase, and
//! `repair.dp_calls_excess` — score evaluations the repair spent *beyond*
//! what a full rebuild would have — is Exact with a committed baseline of
//! 0, so CI enforces repair ≤ rebuild at tolerance 0.
//!
//! `bench-million/*` reports (`experiments million`) gate the seeded
//! graph shape, triangle count and snapshot size exactly; the mmap and
//! thread-scaling wall figures are reported only, and the process-wide
//! `peak_rss_bytes` probe uses the bounded-factor gate (fails only past
//! 2x the baseline, and is skipped when the baseline host lacked the
//! probe entirely).
//!
//! Committed baselines are expected to share one schema *generation*
//! (all regenerated together when a schema bumps), otherwise one-sided
//! counters silently drop out of the gate.  [`CompareReport::generation_skew`]
//! detects the condition, and `experiments bench-compare
//! --deny-generation-skew` (used by CI) turns it into a hard failure.

use crate::json::Json;
use crate::runner::format_table;

/// Whether and how a tracked value participates in the gate.
///
/// Public because scenario specs ([`crate::registry`]) declare their
/// expected-counter gates in exactly these modes; the spec format's
/// `[gates]` section round-trips through [`Gate`]'s `FromStr`/`Display`
/// pair (`exact`, `lower-is-better`, `higher-is-better`,
/// `within-factor:N`, `report-only`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Deterministic; any change beyond tolerance fails.
    Exact,
    /// Deterministic; an increase beyond tolerance fails.
    LowerIsBetter,
    /// An observed ratio; a decrease beyond tolerance fails.
    HigherIsBetter,
    /// An environment probe (peak RSS): only gross growth fails — the
    /// gate trips when `new > old * factor`.  `--tolerance` does not
    /// apply, and a zero baseline (recorded on a platform without the
    /// probe) skips the gate instead of failing every nonzero reading.
    WithinFactor(u32),
    /// Reported for context only (wall clock and derived figures).
    ReportOnly,
}

impl std::fmt::Display for Gate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Gate::Exact => write!(f, "exact"),
            Gate::LowerIsBetter => write!(f, "lower-is-better"),
            Gate::HigherIsBetter => write!(f, "higher-is-better"),
            Gate::WithinFactor(factor) => write!(f, "within-factor:{factor}"),
            Gate::ReportOnly => write!(f, "report-only"),
        }
    }
}

impl std::str::FromStr for Gate {
    type Err = String;

    fn from_str(s: &str) -> Result<Gate, String> {
        match s {
            "exact" => Ok(Gate::Exact),
            "lower-is-better" => Ok(Gate::LowerIsBetter),
            "higher-is-better" => Ok(Gate::HigherIsBetter),
            "report-only" => Ok(Gate::ReportOnly),
            other => match other.strip_prefix("within-factor:") {
                Some(spec) => match spec.parse::<u32>() {
                    Ok(factor) if factor >= 1 => Ok(Gate::WithinFactor(factor)),
                    _ => Err(format!(
                        "invalid within-factor gate '{other}' (expected within-factor:N, N >= 1)"
                    )),
                },
                None => Err(format!(
                    "unknown gate '{other}' (expected exact, lower-is-better, \
                     higher-is-better, within-factor:N or report-only)"
                )),
            },
        }
    }
}

/// One tracked value of the comparison.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Dotted path of the value inside the report.
    pub name: String,
    /// Value in the old report, when present.
    pub old: Option<f64>,
    /// Value in the new report, when present.
    pub new: Option<f64>,
    /// `Some(reason)` when this row fails the gate.
    pub regression: Option<String>,
    /// Human-readable verdict column.
    pub verdict: String,
}

/// Result of comparing two reports.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Schemas of the two files.
    pub old_schema: String,
    /// Schema of the new file.
    pub new_schema: String,
    /// Every tracked value.
    pub rows: Vec<DiffRow>,
    /// Context notes (schema bumps, skipped counters).
    pub notes: Vec<String>,
}

impl CompareReport {
    /// The gated rows that failed.
    pub fn regressions(&self) -> Vec<&DiffRow> {
        self.rows
            .iter()
            .filter(|r| r.regression.is_some())
            .collect()
    }

    /// `Some(description)` when the two reports belong to different
    /// schema generations.  Cross-generation compares degrade gracefully
    /// (one-sided counters are skipped with a note), which is right for
    /// a one-off local diff but wrong for committed baselines — those
    /// should all be regenerated at one generation so every gate is
    /// live.  `experiments bench-compare --deny-generation-skew` turns
    /// this condition into a hard failure.
    pub fn generation_skew(&self) -> Option<String> {
        if self.old_schema == self.new_schema {
            return None;
        }
        let describe = |s: &str| match generation_of(s) {
            Some(g) => format!("{s} (generation {g})"),
            None => s.to_string(),
        };
        Some(format!(
            "{} vs {}",
            describe(&self.old_schema),
            describe(&self.new_schema)
        ))
    }

    /// Renders the comparison as a table plus notes.
    pub fn format(&self) -> String {
        let mut rows = Vec::new();
        for row in &self.rows {
            let fmt = |v: Option<f64>| match v {
                // Counters are integers; ratios and seconds keep decimals.
                Some(x) if x.fract() == 0.0 && x.abs() < 1e15 => format!("{}", x as i64),
                Some(x) => format!("{x:.4}"),
                None => "-".to_string(),
            };
            rows.push(vec![
                row.name.clone(),
                fmt(row.old),
                fmt(row.new),
                row.verdict.clone(),
            ]);
        }
        let mut out = format!(
            "bench-compare: {} (old) vs {} (new)\n{}",
            self.old_schema,
            self.new_schema,
            format_table(&["counter", "old", "new", "verdict"], &rows)
        );
        for note in &self.notes {
            out.push_str(&format!("\nnote: {note}"));
        }
        let regressions = self.regressions();
        if regressions.is_empty() {
            out.push_str("\nresult: OK — no deterministic counter regressed");
        } else {
            out.push_str(&format!("\nresult: {} regression(s):", regressions.len()));
            for r in regressions {
                out.push_str(&format!(
                    "\n  - {}: {}",
                    r.name,
                    r.regression.as_deref().unwrap_or("")
                ));
            }
        }
        out
    }
}

/// The tracked values: dotted path, gate mode.
const TRACKED: &[(&[&str], Gate)] = &[
    (&["counts", "triangles"], Gate::Exact),
    (&["counts", "four_cliques"], Gate::Exact),
    (&["peel", "dp_calls"], Gate::LowerIsBetter),
    (&["peel", "reference_dp_calls"], Gate::ReportOnly),
    (&["peel", "recompute_skips"], Gate::ReportOnly),
    (&["peel", "buckets_touched"], Gate::ReportOnly),
    // Deterministic scratch accounting of the peeling engine: growth is
    // a real algorithmic change, so it gates (bench-parallel/v6 onward;
    // earlier baselines carry the counter and gate identically).
    (&["peel", "peak_scratch_bytes"], Gate::LowerIsBetter),
    // The kernel's VmHWM probe: noisy across allocators and hosts, so
    // only gross growth (2x) fails.
    (&["peel", "peak_rss_bytes"], Gate::WithinFactor(2)),
    (
        &["source", "ingest", "reload_speedup"],
        Gate::HigherIsBetter,
    ),
    // Wall-derived mmap figures: printed for context, gated by CI on a
    // fresh run rather than against baselines from other hardware.
    (&["source", "ingest", "mmap_speedup"], Gate::ReportOnly),
    (&["baseline", "total_s"], Gate::ReportOnly),
    (&["peel", "peel_s"], Gate::ReportOnly),
    (&["peel", "reference_peel_s"], Gate::ReportOnly),
    // θ-sweep counters (bench-parallel/v4, `experiments thetasweep`).
    // `support_builds` is the tentpole invariant: the sweep must build
    // the support structure exactly once, so any drift from the baseline
    // (whose value is 1) fails the gate.
    (&["sweep", "support_builds"], Gate::Exact),
    (&["sweep", "grid_size"], Gate::Exact),
    (&["sweep", "dp_calls_total"], Gate::LowerIsBetter),
    (&["sweep", "independent_dp_calls_total"], Gate::ReportOnly),
    (&["sweep", "sweep_s"], Gate::ReportOnly),
    (&["sweep", "independent_s"], Gate::ReportOnly),
    (&["sweep", "amortization"], Gate::ReportOnly),
    // Query-service counters (bench-serve/v1, `experiments serve
    // --oneshot`).  The scripted session is fixed, so every counter is a
    // deterministic function of the script: all Exact.  The load-bearing
    // three: `support_builds` must stay 1 however many sessions open,
    // repeated-θ queries must keep landing as `cache_hits`, and
    // `protocol_errors` must stay 0 (the script sends no malformed
    // frames).
    (&["stats", "requests"], Gate::Exact),
    (&["stats", "batches"], Gate::Exact),
    (&["stats", "protocol_errors"], Gate::Exact),
    (&["stats", "request_errors"], Gate::Exact),
    (&["stats", "cache_hits"], Gate::Exact),
    (&["stats", "cache_misses"], Gate::Exact),
    (&["stats", "cache_evictions"], Gate::Exact),
    (&["stats", "support_builds"], Gate::Exact),
    (&["stats", "sessions_opened"], Gate::Exact),
    (&["stats", "sessions_closed"], Gate::Exact),
    (&["stats", "deadlines_exceeded"], Gate::Exact),
    // Incremental-update counters, shared by bench-serve/v2 (the
    // scripted session applies one batch) and bench-updates/v1 reports.
    (&["stats", "updates_applied"], Gate::Exact),
    (&["stats", "supports_repaired"], Gate::Exact),
    (&["stats", "cache_invalidations"], Gate::Exact),
    // Repair-vs-rebuild counters (bench-updates/v1, `experiments
    // updates`).  The batch and the damage region are pure functions of
    // the seeded graph and batch: Exact.  `repair_dp_calls` is the work
    // the repair actually spent; `dp_calls_excess` is how far it exceeded
    // a full rebuild (0 in every committed baseline), so gating it Exact
    // at tolerance 0 *is* the "repair never does more work than rebuild"
    // guarantee.
    (&["batch", "inserts"], Gate::Exact),
    (&["batch", "deletes"], Gate::Exact),
    (&["batch", "reweights"], Gate::Exact),
    (&["repair", "affected_elements"], Gate::Exact),
    (&["repair", "region_elements"], Gate::Exact),
    (&["repair", "repair_dp_calls"], Gate::LowerIsBetter),
    (&["repair", "rebuild_dp_calls"], Gate::ReportOnly),
    (&["repair", "dp_calls_excess"], Gate::Exact),
    // Million-edge memory-scaling baseline (bench-million/v1,
    // `experiments million`).  The generator is seeded, so the graph
    // shape, triangle count (gated through the shared `counts` paths)
    // and snapshot size are Exact; the reload/mmap wall numbers are
    // reported only — CI gates those on a fresh run, never against a
    // baseline measured on other hardware — and the RSS probe gets the
    // bounded-factor gate.
    (&["million", "vertices"], Gate::Exact),
    (&["million", "edges"], Gate::Exact),
    (&["million", "snapshot_bytes"], Gate::Exact),
    (&["million", "streaming_chunk_edges"], Gate::Exact),
    (&["million", "snapshot_write_s"], Gate::ReportOnly),
    (&["million", "owned_reload_s"], Gate::ReportOnly),
    (&["million", "mmap_open_s"], Gate::ReportOnly),
    (&["million", "mmap_speedup"], Gate::ReportOnly),
    (&["million", "triangles_1t_s"], Gate::ReportOnly),
    (&["million", "triangles_nt_s"], Gate::ReportOnly),
    (&["million", "triangle_speedup"], Gate::ReportOnly),
    (&["million", "peak_rss_bytes"], Gate::WithinFactor(2)),
];

/// The explicit `rank` field of a report, when present (v5+).
fn rank_of(doc: &Json) -> Option<String> {
    doc.get("rank").and_then(Json::as_str).map(str::to_string)
}

/// The schema families this tool understands.  Reports of different
/// families (a parallel bench vs a serve smoke) share no gated counters
/// and describe different artifacts, so comparing across them is
/// refused rather than silently reporting "everything skipped, OK".
const FAMILIES: &[&str] = &[
    "bench-parallel",
    "bench-serve",
    "bench-updates",
    "bench-million",
    "bench-matrix",
];

fn schema_of(doc: &Json, which: &str) -> Result<(String, String), String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{which} report has no \"schema\" field"))?;
    let family = schema.split('/').next().unwrap_or(schema);
    if !FAMILIES.contains(&family) {
        return Err(format!(
            "{which} report has schema \"{schema}\", expected one of: {}",
            FAMILIES
                .iter()
                .map(|f| format!("{f}/*"))
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    Ok((family.to_string(), schema.to_string()))
}

/// The numeric generation of a `family/vN` schema string — `6` for
/// `bench-parallel/v6`, `None` when the suffix is not of that shape.
pub fn generation_of(schema: &str) -> Option<u64> {
    schema.rsplit('/').next()?.strip_prefix('v')?.parse().ok()
}

/// Compares two parsed reports.  `tolerance` is a relative fraction
/// (e.g. `0.05` allows 5% drift on gated counters).
pub fn compare(old: &Json, new: &Json, tolerance: f64) -> Result<CompareReport, String> {
    if !(0.0..=1.0).contains(&tolerance) {
        return Err(format!("tolerance must be within [0, 1], got {tolerance}"));
    }
    let (old_family, old_schema) = schema_of(old, "old")?;
    let (new_family, new_schema) = schema_of(new, "new")?;
    if old_family != new_family {
        return Err(format!(
            "schema family mismatch: old report is {old_schema}, new report is {new_schema}; \
             the two families share no gated counters, so any verdict would be meaningless"
        ));
    }

    // Pre-v5 reports carry no rank field; they all described the
    // nucleus-rank decomposition, so that is the implied default.
    let old_rank = rank_of(old);
    let new_rank = rank_of(new);
    let old_r = old_rank.as_deref().unwrap_or("nucleus");
    let new_r = new_rank.as_deref().unwrap_or("nucleus");
    if old_r != new_r {
        return Err(format!(
            "rank mismatch: old report is a {old_r} sweep, new report is a {new_r} sweep; \
             their counters describe different algorithms and cannot be gated against \
             each other"
        ));
    }

    let mut rows = Vec::new();
    let mut notes = Vec::new();
    if old_schema != new_schema {
        notes.push(format!(
            "schema bump {old_schema} -> {new_schema}: counters absent from either side are \
             reported as '-' and not gated"
        ));
    }
    if old_rank.is_none() != new_rank.is_none() {
        let which = if old_rank.is_none() { "old" } else { "new" };
        notes.push(format!(
            "{which} report predates the \"rank\" field (bench-parallel/v5); treated as a \
             nucleus sweep"
        ));
    }

    // Matrix reports carry dynamic per-scenario counters instead of the
    // fixed TRACKED table: every counter the baseline recorded is gated
    // Exact against the new run.
    if old_family == "bench-matrix" {
        compare_matrix(old, new, tolerance, &mut rows, &mut notes);
        return Ok(CompareReport {
            old_schema,
            new_schema,
            rows,
            notes,
        });
    }

    for (path, gate) in TRACKED {
        let name = path.join(".");
        let old_v = old.path(path).and_then(Json::as_f64);
        let new_v = new.path(path).and_then(Json::as_f64);
        let (mut regression, mut verdict) = judge(*gate, old_v, new_v, tolerance);
        if old_v.is_none() && new_v.is_none() {
            // Absent on both sides (e.g. reload_speedup on generated
            // runs): not worth a row.
            continue;
        }
        if old_v.is_none() != new_v.is_none() && *gate != Gate::ReportOnly {
            if old_schema == new_schema {
                // Same schema but a gated counter vanished (or appeared):
                // the report shape changed without a schema bump.  Failing
                // here keeps the gate from being silently neutered by a
                // refactor that stops emitting a counter.
                regression = Some(format!(
                    "gated counter present in only one {old_schema} report; \
                     bump the schema version if this is intentional"
                ));
                verdict = "REGRESSED".to_string();
            } else {
                notes.push(format!(
                    "{name}: present in only one report; compared as not gated"
                ));
            }
        }
        rows.push(DiffRow {
            name,
            old: old_v,
            new: new_v,
            regression,
            verdict,
        });
    }
    Ok(CompareReport {
        old_schema,
        new_schema,
        rows,
        notes,
    })
}

/// The `scenarios` array of a `bench-matrix/*` report, keyed by name.
fn matrix_scenarios(doc: &Json) -> Vec<(&str, &Json)> {
    doc.get("scenarios")
        .and_then(Json::as_array)
        .map(|items| {
            items
                .iter()
                .filter_map(|item| item.get("name").and_then(Json::as_str).map(|n| (n, item)))
                .collect()
        })
        .unwrap_or_default()
}

/// The flat `counters` object of one matrix scenario entry.
fn matrix_counters(item: &Json) -> Vec<(&str, f64)> {
    match item.get("counters") {
        Some(Json::Obj(members)) => members
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|x| (k.as_str(), x)))
            .collect(),
        _ => Vec::new(),
    }
}

/// The `passed` flag of one matrix scenario entry, as a gateable number.
fn matrix_passed(item: &Json) -> Option<f64> {
    item.get("passed")
        .and_then(Json::as_bool)
        .map(|b| if b { 1.0 } else { 0.0 })
}

/// Diffs two `bench-matrix/*` reports.  Unlike the fixed-table families,
/// the gated surface here is *dynamic*: every scenario and every counter
/// the baseline recorded must still be present and Exact-equal (within
/// tolerance) in the new run.  New scenarios/counters are noted, not
/// gated — they become live on the next baseline regeneration.
fn compare_matrix(
    old: &Json,
    new: &Json,
    tolerance: f64,
    rows: &mut Vec<DiffRow>,
    notes: &mut Vec<String>,
) {
    for key in ["total", "passed", "failed"] {
        let old_v = old.get(key).and_then(Json::as_f64);
        let new_v = new.get(key).and_then(Json::as_f64);
        if old_v.is_none() && new_v.is_none() {
            continue;
        }
        let (regression, verdict) = judge(Gate::Exact, old_v, new_v, tolerance);
        rows.push(DiffRow {
            name: key.to_string(),
            old: old_v,
            new: new_v,
            regression,
            verdict,
        });
    }
    let old_items = matrix_scenarios(old);
    let new_items = matrix_scenarios(new);
    for (name, old_item) in &old_items {
        let Some((_, new_item)) = new_items.iter().find(|(n, _)| n == name) else {
            rows.push(DiffRow {
                name: format!("{name}.passed"),
                old: matrix_passed(old_item),
                new: None,
                regression: Some(
                    "scenario missing from the new report; regenerate the baseline if it \
                     was removed deliberately"
                        .to_string(),
                ),
                verdict: "REGRESSED".to_string(),
            });
            continue;
        };
        let old_p = matrix_passed(old_item);
        let new_p = matrix_passed(new_item);
        let (regression, verdict) = judge(Gate::Exact, old_p, new_p, tolerance);
        rows.push(DiffRow {
            name: format!("{name}.passed"),
            old: old_p,
            new: new_p,
            regression,
            verdict,
        });
        let new_counters = matrix_counters(new_item);
        for (counter, old_v) in matrix_counters(old_item) {
            let new_v = new_counters
                .iter()
                .find(|(k, _)| *k == counter)
                .map(|(_, v)| *v);
            let (mut regression, mut verdict) = judge(Gate::Exact, Some(old_v), new_v, tolerance);
            if new_v.is_none() {
                // A counter the baseline gates vanished: same failure
                // mode as a same-schema TRACKED counter disappearing.
                regression = Some(
                    "gated counter missing from the new report; regenerate the baseline \
                     if the scenario's counter set changed deliberately"
                        .to_string(),
                );
                verdict = "REGRESSED".to_string();
            }
            rows.push(DiffRow {
                name: format!("{name}.{counter}"),
                old: Some(old_v),
                new: new_v,
                regression,
                verdict,
            });
        }
        for (counter, _) in new_counters {
            if !matrix_counters(old_item).iter().any(|(k, _)| *k == counter) {
                notes.push(format!(
                    "{name}.{counter}: new counter, not gated until the baseline is \
                     regenerated"
                ));
            }
        }
    }
    for (name, _) in &new_items {
        if !old_items.iter().any(|(n, _)| n == name) {
            notes.push(format!(
                "scenario {name}: new in this run, not gated until the baseline is \
                 regenerated"
            ));
        }
    }
}

/// Applies the gate to one value pair.  Crate-visible so the scenario
/// registry can reuse the exact gate semantics for its declared
/// expected-counter checks.
pub(crate) fn judge(
    gate: Gate,
    old: Option<f64>,
    new: Option<f64>,
    tolerance: f64,
) -> (Option<String>, String) {
    let (old_v, new_v) = match (old, new) {
        (Some(o), Some(n)) => (o, n),
        // A counter only one side carries cannot be gated (schema bump).
        _ => return (None, "skipped".to_string()),
    };
    let slack = tolerance * old_v.abs().max(1.0);
    match gate {
        Gate::ReportOnly => (None, "info".to_string()),
        Gate::Exact => {
            if (new_v - old_v).abs() > slack {
                (
                    Some(format!(
                        "must match the baseline (old {old_v}, new {new_v}, tolerance {tolerance})"
                    )),
                    "REGRESSED".to_string(),
                )
            } else {
                (None, "ok".to_string())
            }
        }
        Gate::LowerIsBetter => {
            if new_v > old_v + slack {
                (
                    Some(format!(
                        "increased beyond tolerance (old {old_v}, new {new_v})"
                    )),
                    "REGRESSED".to_string(),
                )
            } else if new_v < old_v {
                (None, "improved".to_string())
            } else {
                (None, "ok".to_string())
            }
        }
        Gate::HigherIsBetter => {
            if new_v < old_v - slack {
                (
                    Some(format!(
                        "decreased beyond tolerance (old {old_v}, new {new_v})"
                    )),
                    "REGRESSED".to_string(),
                )
            } else if new_v > old_v {
                (None, "improved".to_string())
            } else {
                (None, "ok".to_string())
            }
        }
        Gate::WithinFactor(factor) => {
            if old_v == 0.0 {
                // The baseline host lacked the probe (e.g. no
                // /proc/self/status): nothing meaningful to gate against.
                (None, "skipped".to_string())
            } else if new_v > old_v * factor as f64 {
                (
                    Some(format!(
                        "grew past {factor}x the baseline (old {old_v}, new {new_v})"
                    )),
                    "REGRESSED".to_string(),
                )
            } else {
                (None, "ok".to_string())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v3(dp_calls: u64, triangles: u64, reload: Option<f64>) -> Json {
        let ingest = match reload {
            Some(r) => format!(", \"ingest\": {{ \"reload_speedup\": {r} }}"),
            None => String::new(),
        };
        Json::parse(&format!(
            r#"{{ "schema": "bench-parallel/v3",
                  "source": {{ "kind": "generated"{ingest} }},
                  "counts": {{ "triangles": {triangles}, "four_cliques": 165 }},
                  "baseline": {{ "total_s": 0.2 }},
                  "peel": {{ "dp_calls": {dp_calls}, "reference_dp_calls": 400,
                             "recompute_skips": 10, "buckets_touched": 3,
                             "peak_scratch_bytes": 1024, "peel_s": 0.01,
                             "reference_peel_s": 0.02 }} }}"#
        ))
        .unwrap()
    }

    fn v2(triangles: u64) -> Json {
        Json::parse(&format!(
            r#"{{ "schema": "bench-parallel/v2",
                  "counts": {{ "triangles": {triangles}, "four_cliques": 165 }},
                  "baseline": {{ "total_s": 0.2 }} }}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_reports_pass() {
        let report = compare(&v3(100, 20821, Some(6.0)), &v3(100, 20821, Some(6.0)), 0.0).unwrap();
        assert!(report.regressions().is_empty(), "{}", report.format());
        assert!(report.format().contains("result: OK"));
    }

    #[test]
    fn dp_call_increase_fails_and_decrease_improves() {
        let report = compare(&v3(100, 20821, None), &v3(101, 20821, None), 0.0).unwrap();
        let failing: Vec<_> = report
            .regressions()
            .iter()
            .map(|r| r.name.clone())
            .collect();
        assert_eq!(failing, vec!["peel.dp_calls"]);
        assert!(report.format().contains("REGRESSED"));

        let improved = compare(&v3(100, 20821, None), &v3(60, 20821, None), 0.0).unwrap();
        assert!(improved.regressions().is_empty());
        assert!(improved.format().contains("improved"));
    }

    #[test]
    fn tolerance_allows_bounded_drift() {
        // 5% tolerance: 104 dp_calls on a 100 baseline passes, 106 fails.
        assert!(compare(&v3(100, 20821, None), &v3(104, 20821, None), 0.05)
            .unwrap()
            .regressions()
            .is_empty());
        assert!(!compare(&v3(100, 20821, None), &v3(106, 20821, None), 0.05)
            .unwrap()
            .regressions()
            .is_empty());
        assert!(compare(&v3(100, 20821, None), &v3(100, 20821, None), 2.0).is_err());
    }

    #[test]
    fn count_drift_fails_in_both_directions() {
        for new_triangles in [20820, 20822] {
            let report =
                compare(&v3(100, 20821, None), &v3(100, new_triangles, None), 0.0).unwrap();
            let failing: Vec<_> = report
                .regressions()
                .iter()
                .map(|r| r.name.clone())
                .collect();
            assert_eq!(failing, vec!["counts.triangles"], "new = {new_triangles}");
        }
    }

    #[test]
    fn reload_speedup_gates_only_downward() {
        let slower = compare(&v3(100, 20821, Some(6.0)), &v3(100, 20821, Some(4.0)), 0.1).unwrap();
        assert_eq!(slower.regressions().len(), 1);
        let faster = compare(&v3(100, 20821, Some(6.0)), &v3(100, 20821, Some(9.0)), 0.0).unwrap();
        assert!(faster.regressions().is_empty());
    }

    #[test]
    fn v2_baseline_skips_peel_counters_with_a_note() {
        let report = compare(&v2(20821), &v3(100, 20821, None), 0.0).unwrap();
        assert!(report.regressions().is_empty(), "{}", report.format());
        assert!(report
            .notes
            .iter()
            .any(|n| n.contains("schema bump bench-parallel/v2 -> bench-parallel/v3")));
        let dp_row = report
            .rows
            .iter()
            .find(|r| r.name == "peel.dp_calls")
            .unwrap();
        assert_eq!(dp_row.old, None);
        assert_eq!(dp_row.verdict, "skipped");
    }

    #[test]
    fn same_schema_missing_gated_counter_fails() {
        // A v3 report that silently stops emitting a gated counter must
        // not slip through as "skipped" — that would neuter the gate.
        let mut doc = v3(100, 20821, None);
        if let Json::Obj(members) = &mut doc {
            members.retain(|(k, _)| k != "counts");
        }
        let report = compare(&v3(100, 20821, None), &doc, 0.0).unwrap();
        let failing: Vec<_> = report
            .regressions()
            .iter()
            .map(|r| r.name.clone())
            .collect();
        assert_eq!(failing, vec!["counts.triangles", "counts.four_cliques"]);
        assert!(report.format().contains("bump the schema version"));
    }

    fn v4(support_builds: u64, dp_total: u64, triangles: u64) -> Json {
        Json::parse(&format!(
            r#"{{ "schema": "bench-parallel/v4",
                  "source": {{ "kind": "generated" }},
                  "counts": {{ "triangles": {triangles}, "four_cliques": 165 }},
                  "sweep": {{ "grid_size": 5, "support_builds": {support_builds},
                              "dp_calls_total": {dp_total},
                              "independent_dp_calls_total": {dp_total},
                              "sweep_s": 0.5, "independent_s": 1.6,
                              "amortization": 3.2 }} }}"#
        ))
        .unwrap()
    }

    #[test]
    fn v4_support_builds_gate_is_exact() {
        let ok = compare(&v4(1, 400, 20821), &v4(1, 400, 20821), 0.0).unwrap();
        assert!(ok.regressions().is_empty(), "{}", ok.format());
        // A second support build is the exact regression the sweep
        // exists to prevent; tolerance must not excuse it either way.
        let rebuilt = compare(&v4(1, 400, 20821), &v4(2, 400, 20821), 0.0).unwrap();
        let failing: Vec<_> = rebuilt
            .regressions()
            .iter()
            .map(|r| r.name.clone())
            .collect();
        assert_eq!(failing, vec!["sweep.support_builds"]);
    }

    #[test]
    fn v4_sweep_dp_total_gates_only_upward() {
        let more = compare(&v4(1, 400, 20821), &v4(1, 401, 20821), 0.0).unwrap();
        assert_eq!(more.regressions().len(), 1);
        assert_eq!(more.regressions()[0].name, "sweep.dp_calls_total");
        let fewer = compare(&v4(1, 400, 20821), &v4(1, 300, 20821), 0.0).unwrap();
        assert!(fewer.regressions().is_empty());
    }

    #[test]
    fn v3_to_v4_schema_bump_degrades_gracefully() {
        // A v3 baseline (parbench) against a v4 report (thetasweep) on
        // the same graph: shared counters still gate (counts must
        // match), one-sided counters are skipped with a note.
        let report = compare(&v3(100, 20821, None), &v4(1, 400, 20821), 0.0).unwrap();
        assert!(report.regressions().is_empty(), "{}", report.format());
        assert!(report
            .notes
            .iter()
            .any(|n| n.contains("schema bump bench-parallel/v3 -> bench-parallel/v4")));
        assert!(report
            .notes
            .iter()
            .any(|n| n.contains("sweep.support_builds")));
        // Shared counters still diverge loudly.
        let drifted = compare(&v3(100, 20821, None), &v4(1, 400, 99), 0.0).unwrap();
        assert!(!drifted.regressions().is_empty());
    }

    fn v5(rank: &str, support_builds: u64, dp_total: u64, triangles: u64) -> Json {
        // The truss rank's counts carry no four_cliques; keep the fixture
        // honest about that so cross-rank key presence is exercised too.
        let counts = if rank == "nucleus" {
            format!(r#"{{ "triangles": {triangles}, "four_cliques": 165 }}"#)
        } else {
            format!(r#"{{ "triangles": {triangles} }}"#)
        };
        Json::parse(&format!(
            r#"{{ "schema": "bench-parallel/v5",
                  "rank": "{rank}",
                  "source": {{ "kind": "generated" }},
                  "counts": {counts},
                  "sweep": {{ "grid_size": 5, "support_builds": {support_builds},
                              "dp_calls_total": {dp_total},
                              "independent_dp_calls_total": {dp_total},
                              "sweep_s": 0.5, "independent_s": 1.6,
                              "amortization": 3.2 }} }}"#
        ))
        .unwrap()
    }

    #[test]
    fn v4_to_v5_schema_bump_degrades_gracefully() {
        // A v4 baseline has no "rank" key: treated as a nucleus sweep, so
        // gating against a v5 nucleus report works and the assumption is
        // spelled out in a note.
        let report = compare(&v4(1, 400, 20821), &v5("nucleus", 1, 400, 20821), 0.0).unwrap();
        assert!(report.regressions().is_empty(), "{}", report.format());
        assert!(report
            .notes
            .iter()
            .any(|n| n.contains("schema bump bench-parallel/v4 -> bench-parallel/v5")));
        assert!(report
            .notes
            .iter()
            .any(|n| n.contains("old report predates the \"rank\" field")));
        // The gated sweep counters still bite across the bump.
        let rebuilt = compare(&v4(1, 400, 20821), &v5("nucleus", 2, 400, 20821), 0.0).unwrap();
        assert_eq!(rebuilt.regressions()[0].name, "sweep.support_builds");
    }

    #[test]
    fn v5_gates_apply_per_rank() {
        // Same-rank v5 reports gate exactly like v4 ones did.
        let ok = compare(&v5("truss", 1, 300, 9000), &v5("truss", 1, 300, 9000), 0.0).unwrap();
        assert!(ok.regressions().is_empty(), "{}", ok.format());
        let rebuilt = compare(&v5("truss", 1, 300, 9000), &v5("truss", 2, 300, 9000), 0.0).unwrap();
        let failing: Vec<_> = rebuilt
            .regressions()
            .iter()
            .map(|r| r.name.clone())
            .collect();
        assert_eq!(failing, vec!["sweep.support_builds"]);
        let more_dp = compare(&v5("core", 1, 300, 0), &v5("core", 1, 301, 0), 0.0).unwrap();
        assert_eq!(more_dp.regressions()[0].name, "sweep.dp_calls_total");
    }

    #[test]
    fn mismatched_ranks_are_refused() {
        // A truss baseline against a core report (or a v4 nucleus
        // baseline against a truss report) compares different
        // algorithms: refuse instead of emitting a meaningless verdict.
        let err = compare(&v5("truss", 1, 300, 9000), &v5("core", 1, 300, 9000), 0.0).unwrap_err();
        assert!(err.contains("rank mismatch"), "{err}");
        let err = compare(&v4(1, 400, 20821), &v5("truss", 1, 300, 20821), 0.0).unwrap_err();
        assert!(err.contains("rank mismatch"), "{err}");
    }

    #[test]
    fn rejects_non_bench_schemas() {
        let bogus = Json::parse(r#"{ "schema": "something-else/v1" }"#).unwrap();
        assert!(compare(&bogus, &v2(1), 0.0).is_err());
        let missing = Json::parse(r#"{ "counts": {} }"#).unwrap();
        assert!(compare(&v2(1), &missing, 0.0).is_err());
    }

    fn serve_v1(hits: u64, builds: u64, protocol_errors: u64) -> Json {
        Json::parse(&format!(
            r#"{{ "schema": "bench-serve/v1",
                  "source": {{ "kind": "generated" }},
                  "oneshot": {{ "passed": true, "bit_identical": true, "failures": [ ] }},
                  "stats": {{ "requests": 22, "batches": 1,
                              "protocol_errors": {protocol_errors},
                              "request_errors": 4, "cache_hits": {hits},
                              "cache_misses": 2, "cache_evictions": 0,
                              "support_builds": {builds}, "sessions_opened": 2,
                              "sessions_closed": 2, "deadlines_exceeded": 1 }} }}"#
        ))
        .unwrap()
    }

    fn serve(hits: u64, builds: u64, protocol_errors: u64) -> Json {
        serve_with_updates(hits, builds, protocol_errors, 1, 2)
    }

    fn serve_with_updates(
        hits: u64,
        builds: u64,
        protocol_errors: u64,
        repaired: u64,
        invalidations: u64,
    ) -> Json {
        Json::parse(&format!(
            r#"{{ "schema": "bench-serve/v2",
                  "source": {{ "kind": "generated" }},
                  "oneshot": {{ "passed": true, "bit_identical": true, "failures": [ ] }},
                  "stats": {{ "requests": 33, "batches": 1,
                              "protocol_errors": {protocol_errors},
                              "request_errors": 6, "cache_hits": {hits},
                              "cache_misses": 4, "cache_evictions": 0,
                              "support_builds": {builds}, "sessions_opened": 2,
                              "sessions_closed": 2, "deadlines_exceeded": 1,
                              "updates_applied": 1,
                              "supports_repaired": {repaired},
                              "cache_invalidations": {invalidations} }} }}"#
        ))
        .unwrap()
    }

    #[test]
    fn serve_reports_gate_every_counter_exactly() {
        let ok = compare(&serve(8, 1, 0), &serve(8, 1, 0), 0.0).unwrap();
        assert!(ok.regressions().is_empty(), "{}", ok.format());
        // A second support build, a lost cache hit, any protocol error,
        // a rebuild instead of a repair, or a drifted invalidation count
        // each trips its own exact gate.
        for (drifted, expect) in [
            (serve(8, 2, 0), "stats.support_builds"),
            (serve(7, 1, 0), "stats.cache_hits"),
            (serve(8, 1, 1), "stats.protocol_errors"),
            (serve_with_updates(8, 1, 0, 0, 2), "stats.supports_repaired"),
            (
                serve_with_updates(8, 1, 0, 1, 3),
                "stats.cache_invalidations",
            ),
        ] {
            let report = compare(&serve(8, 1, 0), &drifted, 0.0).unwrap();
            let failing: Vec<_> = report
                .regressions()
                .iter()
                .map(|r| r.name.clone())
                .collect();
            assert_eq!(failing, vec![expect]);
        }
    }

    #[test]
    fn serve_v1_baseline_skips_update_counters_with_a_note() {
        // A pre-update v1 baseline gates the shared counters it carries
        // and skips the v2 update counters (its cache_misses differ —
        // the v2 script queries after its update batch — so those rows
        // regress loudly rather than being silently reconciled).
        let report = compare(&serve_v1(8, 1, 0), &serve(8, 1, 0), 0.0).unwrap();
        let failing: Vec<_> = report
            .regressions()
            .iter()
            .map(|r| r.name.clone())
            .collect();
        assert_eq!(
            failing,
            vec![
                "stats.requests",
                "stats.request_errors",
                "stats.cache_misses"
            ]
        );
        assert!(report
            .notes
            .iter()
            .any(|n| n.contains("schema bump bench-serve/v1 -> bench-serve/v2")));
        let repaired = report
            .rows
            .iter()
            .find(|r| r.name == "stats.supports_repaired")
            .unwrap();
        assert_eq!(repaired.old, None);
        assert_eq!(repaired.verdict, "skipped");
    }

    fn updates(repair: u64, rebuild: u64, region: u64) -> Json {
        let excess = repair.saturating_sub(rebuild);
        Json::parse(&format!(
            r#"{{ "schema": "bench-updates/v1",
                  "rank": "truss",
                  "source": {{ "kind": "generated" }},
                  "batch": {{ "inserts": 64, "deletes": 64, "reweights": 64 }},
                  "repair": {{ "affected_elements": 900,
                               "region_elements": {region},
                               "repair_dp_calls": {repair},
                               "rebuild_dp_calls": {rebuild},
                               "dp_calls_excess": {excess} }} }}"#
        ))
        .unwrap()
    }

    #[test]
    fn updates_reports_gate_repair_never_exceeding_rebuild() {
        let ok = compare(
            &updates(5_000, 60_000, 1_200),
            &updates(5_000, 60_000, 1_200),
            0.0,
        )
        .unwrap();
        assert!(ok.regressions().is_empty(), "{}", ok.format());
        // More repair work (still under rebuild) fails LowerIsBetter…
        let slower = compare(
            &updates(5_000, 60_000, 1_200),
            &updates(6_000, 60_000, 1_200),
            0.0,
        )
        .unwrap();
        let failing: Vec<_> = slower
            .regressions()
            .iter()
            .map(|r| r.name.clone())
            .collect();
        assert_eq!(failing, vec!["repair.repair_dp_calls"]);
        // …and a repair that exceeds the rebuild breaks the Exact
        // dp_calls_excess gate on top (baseline excess is 0).
        let exceeded = compare(
            &updates(5_000, 60_000, 1_200),
            &updates(61_000, 60_000, 1_200),
            0.0,
        )
        .unwrap();
        let failing: Vec<_> = exceeded
            .regressions()
            .iter()
            .map(|r| r.name.clone())
            .collect();
        assert_eq!(
            failing,
            vec!["repair.repair_dp_calls", "repair.dp_calls_excess"]
        );
        // A grown damage region is an algorithm change, not noise.
        let wider = compare(
            &updates(5_000, 60_000, 1_200),
            &updates(5_000, 60_000, 1_300),
            0.0,
        )
        .unwrap();
        assert_eq!(wider.regressions()[0].name, "repair.region_elements");
    }

    #[test]
    fn updates_reports_refuse_cross_rank_and_cross_family() {
        let mut core = updates(5_000, 60_000, 1_200);
        if let Json::Obj(members) = &mut core {
            for (k, v) in members.iter_mut() {
                if k == "rank" {
                    *v = Json::Str("core".to_string());
                }
            }
        }
        let err = compare(&updates(5_000, 60_000, 1_200), &core, 0.0).unwrap_err();
        assert!(err.contains("rank mismatch"), "{err}");
        let err = compare(&updates(5_000, 60_000, 1_200), &serve(8, 1, 0), 0.0).unwrap_err();
        assert!(err.contains("schema family mismatch"), "{err}");
    }

    #[test]
    fn cross_family_compares_are_refused() {
        let err = compare(&v3(100, 20821, None), &serve(8, 1, 0), 0.0).unwrap_err();
        assert!(err.contains("schema family mismatch"), "{err}");
        let err = compare(&serve(8, 1, 0), &v5("nucleus", 1, 400, 20821), 0.0).unwrap_err();
        assert!(err.contains("schema family mismatch"), "{err}");
    }

    fn million(edges: u64, snapshot_bytes: u64, rss: u64) -> Json {
        Json::parse(&format!(
            r#"{{ "schema": "bench-million/v1",
                  "rank": "truss",
                  "source": {{ "kind": "generated" }},
                  "counts": {{ "triangles": 3100000 }},
                  "million": {{ "vertices": 200005, "edges": {edges},
                                "snapshot_bytes": {snapshot_bytes},
                                "streaming_chunk_edges": 65536,
                                "snapshot_write_s": 0.9, "owned_reload_s": 0.08,
                                "mmap_open_s": 0.002, "mmap_speedup": 40.0,
                                "triangles_1t_s": 2.0, "triangles_nt_s": 0.7,
                                "triangle_speedup": 2.8,
                                "peak_rss_bytes": {rss} }},
                  "sweep": {{ "grid_size": 2, "support_builds": 1,
                              "dp_calls_total": 5000000, "sweep_s": 30.0 }} }}"#
        ))
        .unwrap()
    }

    #[test]
    fn million_reports_gate_shape_exactly_and_walls_not_at_all() {
        let base = million(1_000_025, 48_001_296, 3_000_000_000);
        let ok = compare(&base, &million(1_000_025, 48_001_296, 3_000_000_000), 0.0).unwrap();
        assert!(ok.regressions().is_empty(), "{}", ok.format());
        // A drifted edge count or snapshot size is an algorithm/format
        // change; a wildly different mmap_speedup is just another host.
        let drifted = compare(&base, &million(1_000_026, 48_001_296, 3_000_000_000), 0.0).unwrap();
        assert_eq!(drifted.regressions()[0].name, "million.edges");
        let bigger = compare(&base, &million(1_000_025, 48_999_999, 3_000_000_000), 0.0).unwrap();
        assert_eq!(bigger.regressions()[0].name, "million.snapshot_bytes");
    }

    #[test]
    fn rss_gate_fails_only_past_the_factor_and_skips_zero_baselines() {
        let base = million(1_000_025, 48_001_296, 3_000_000_000);
        // 1.9x growth passes, 2.1x fails, shrinking is fine.
        assert!(
            compare(&base, &million(1_000_025, 48_001_296, 5_700_000_000), 0.0)
                .unwrap()
                .regressions()
                .is_empty()
        );
        let report = compare(&base, &million(1_000_025, 48_001_296, 6_300_000_000), 0.0).unwrap();
        assert_eq!(report.regressions()[0].name, "million.peak_rss_bytes");
        assert!(report.format().contains("grew past 2x"));
        assert!(
            compare(&base, &million(1_000_025, 48_001_296, 1_000_000), 0.0)
                .unwrap()
                .regressions()
                .is_empty()
        );
        // A baseline recorded without the probe (0) gates nothing.
        let blind = million(1_000_025, 48_001_296, 0);
        let report = compare(&blind, &base, 0.0).unwrap();
        assert!(report.regressions().is_empty(), "{}", report.format());
        let rss_row = report
            .rows
            .iter()
            .find(|r| r.name == "million.peak_rss_bytes")
            .unwrap();
        assert_eq!(rss_row.verdict, "skipped");
    }

    #[test]
    fn million_vs_parallel_compares_are_refused() {
        let err = compare(
            &million(1_000_025, 48_001_296, 0),
            &v3(100, 20821, None),
            0.0,
        )
        .unwrap_err();
        assert!(err.contains("schema family mismatch"), "{err}");
    }

    #[test]
    fn gate_spellings_round_trip_and_reject_garbage() {
        for gate in [
            Gate::Exact,
            Gate::LowerIsBetter,
            Gate::HigherIsBetter,
            Gate::WithinFactor(2),
            Gate::ReportOnly,
        ] {
            assert_eq!(gate.to_string().parse::<Gate>().unwrap(), gate);
        }
        assert!("exactly".parse::<Gate>().is_err());
        assert!("within-factor:0".parse::<Gate>().is_err());
        assert!("within-factor:x".parse::<Gate>().is_err());
    }

    fn matrix(triangles: u64, passed: bool, extra_scenario: bool) -> Json {
        let second = if extra_scenario {
            r#", { "name": "z-extra", "workload": "parbench", "tags": [],
                   "passed": true, "failures": [],
                   "counters": { "counts.triangles": 7 } }"#
        } else {
            ""
        };
        let (p, failed) = if passed { ("true", 0) } else { ("false", 1) };
        let total = if extra_scenario { 2 } else { 1 };
        Json::parse(&format!(
            r#"{{ "schema": "bench-matrix/v1",
                  "total": {total}, "passed": {}, "failed": {failed},
                  "scenarios": [
                    {{ "name": "parbench-smoke", "workload": "parbench",
                       "tags": ["bench"], "passed": {p}, "failures": [],
                       "counters": {{ "counts.triangles": {triangles},
                                      "peel.dp_calls": 400 }} }}{second}
                  ] }}"#,
            total - failed
        ))
        .unwrap()
    }

    #[test]
    fn matrix_reports_gate_every_scenario_counter_exactly() {
        let ok = compare(
            &matrix(20821, true, false),
            &matrix(20821, true, false),
            0.0,
        )
        .unwrap();
        assert!(ok.regressions().is_empty(), "{}", ok.format());
        // A drifted counter and a newly failing scenario each trip gates.
        let drifted = compare(
            &matrix(20821, true, false),
            &matrix(20822, true, false),
            0.0,
        )
        .unwrap();
        let failing: Vec<_> = drifted
            .regressions()
            .iter()
            .map(|r| r.name.clone())
            .collect();
        assert_eq!(failing, vec!["parbench-smoke.counts.triangles"]);
        let failed = compare(
            &matrix(20821, true, false),
            &matrix(20821, false, false),
            0.0,
        )
        .unwrap();
        let failing: Vec<_> = failed
            .regressions()
            .iter()
            .map(|r| r.name.clone())
            .collect();
        assert_eq!(failing, vec!["passed", "failed", "parbench-smoke.passed"]);
    }

    #[test]
    fn matrix_dropped_scenario_regresses_and_new_scenario_notes() {
        let dropped =
            compare(&matrix(20821, true, true), &matrix(20821, true, false), 0.0).unwrap();
        let failing: Vec<_> = dropped
            .regressions()
            .iter()
            .map(|r| r.name.clone())
            .collect();
        // total changed AND the scenario itself is reported missing.
        assert!(failing.contains(&"total".to_string()), "{failing:?}");
        assert!(
            failing.contains(&"z-extra.passed".to_string()),
            "{failing:?}"
        );
        let added = compare(&matrix(20821, true, false), &matrix(20821, true, true), 0.0).unwrap();
        assert!(added
            .notes
            .iter()
            .any(|n| n.contains("scenario z-extra: new in this run")));
        // The new scenario itself is not gated, but totals still are.
        let failing: Vec<_> = added.regressions().iter().map(|r| r.name.clone()).collect();
        assert_eq!(failing, vec!["total", "passed"]);
    }

    #[test]
    fn matrix_vanished_counter_regresses() {
        let mut new = matrix(20821, true, false);
        if let Some(Json::Arr(items)) = {
            // Navigate mutably: strip one counter from the only scenario.
            if let Json::Obj(members) = &mut new {
                members
                    .iter_mut()
                    .find(|(k, _)| k == "scenarios")
                    .map(|(_, v)| v)
            } else {
                None
            }
        } {
            if let Json::Obj(sc) = &mut items[0] {
                for (k, v) in sc.iter_mut() {
                    if k == "counters" {
                        if let Json::Obj(counters) = v {
                            counters.retain(|(name, _)| name != "peel.dp_calls");
                        }
                    }
                }
            }
        }
        let report = compare(&matrix(20821, true, false), &new, 0.0).unwrap();
        let failing: Vec<_> = report
            .regressions()
            .iter()
            .map(|r| r.name.clone())
            .collect();
        assert_eq!(failing, vec!["parbench-smoke.peel.dp_calls"]);
        assert!(report.format().contains("regenerate the baseline"));
    }

    #[test]
    fn matrix_vs_other_families_is_refused() {
        let err = compare(&matrix(20821, true, false), &v3(100, 20821, None), 0.0).unwrap_err();
        assert!(err.contains("schema family mismatch"), "{err}");
    }

    #[test]
    fn generation_skew_is_detected_and_parses_versions() {
        assert_eq!(generation_of("bench-parallel/v6"), Some(6));
        assert_eq!(generation_of("bench-serve/v2"), Some(2));
        assert_eq!(generation_of("bench-parallel"), None);
        assert_eq!(generation_of("bench-parallel/beta"), None);
        // Same schema: no skew.
        let same = compare(&v3(100, 20821, None), &v3(100, 20821, None), 0.0).unwrap();
        assert_eq!(same.generation_skew(), None);
        // Cross-generation: flagged with both versions spelled out.
        let skewed = compare(&v3(100, 20821, None), &v4(1, 400, 20821), 0.0).unwrap();
        let msg = skewed.generation_skew().expect("skew detected");
        assert!(msg.contains("bench-parallel/v3 (generation 3)"), "{msg}");
        assert!(msg.contains("bench-parallel/v4 (generation 4)"), "{msg}");
    }
}
