//! Table 2 — accuracy of the hybrid approximation (AP): average difference
//! of the final nucleus scores from the exact DP scores, and the fraction
//! of triangles whose score differs, for θ ∈ {0.2, 0.4}.

use nd_datasets::PaperDataset;
use nucleus::{LocalConfig, LocalNucleusDecomposition, SupportStructure};

use crate::runner::{format_table, ExperimentContext};

/// Thresholds reported by the table.
pub const THETAS: [f64; 2] = [0.2, 0.4];

/// Accuracy of AP on one dataset at one threshold.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Dataset name.
    pub dataset: String,
    /// Threshold θ.
    pub theta: f64,
    /// Average absolute score difference over all triangles.
    pub avg_error: f64,
    /// Percentage of triangles whose AP score differs from the DP score.
    pub pct_with_error: f64,
    /// Number of triangles compared.
    pub num_triangles: usize,
}

/// The full Table 2.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// One row per dataset × θ.
    pub rows: Vec<Table2Row>,
}

/// Runs the experiment over the given datasets.
pub fn run(ctx: &ExperimentContext, datasets: &[PaperDataset]) -> Table2 {
    let mut rows = Vec::new();
    for &ds in datasets {
        let graph = ctx.dataset(ds);
        let support = SupportStructure::build(&graph);
        for &theta in &THETAS {
            let dp = LocalNucleusDecomposition::with_support(
                support.clone(),
                &LocalConfig::exact(theta),
            )
            .expect("valid config");
            let ap = LocalNucleusDecomposition::with_support(
                support.clone(),
                &LocalConfig::approximate(theta),
            )
            .expect("valid config");
            let n = dp.num_triangles();
            let mut total_error = 0.0f64;
            let mut with_error = 0usize;
            for t in 0..n {
                let diff = (dp.scores()[t] as i64 - ap.scores()[t] as i64).unsigned_abs();
                if diff > 0 {
                    with_error += 1;
                    total_error += diff as f64;
                }
            }
            rows.push(Table2Row {
                dataset: ctx.dataset_name(ds),
                theta,
                avg_error: if n == 0 { 0.0 } else { total_error / n as f64 },
                pct_with_error: if n == 0 {
                    0.0
                } else {
                    100.0 * with_error as f64 / n as f64
                },
                num_triangles: n,
            });
        }
    }
    Table2 { rows }
}

impl Table2 {
    /// Formats the table.
    pub fn format(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.to_string(),
                    format!("{:.1}", r.theta),
                    format!("{:.4}", r.avg_error),
                    format!("{:.2}%", r.pct_with_error),
                    r.num_triangles.to_string(),
                ]
            })
            .collect();
        format!(
            "Table 2: accuracy of AP scores vs exact DP scores\n{}",
            format_table(
                &["Graph", "theta", "avg error", "% tri with error", "#tri"],
                &rows
            )
        )
    }

    /// The paper reports average errors below ~0.06 and error percentages
    /// below ~6% on all datasets; returns rows violating a generous bound.
    pub fn check_shape(&self) -> Vec<String> {
        self.rows
            .iter()
            .filter(|r| r.avg_error > 0.1 || r.pct_with_error > 10.0)
            .map(|r| {
                format!(
                    "{} theta={}: avg error {:.4}, {:.2}% triangles differ",
                    r.dataset, r.theta, r.avg_error, r.pct_with_error
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_datasets::Scale;

    #[test]
    fn ap_is_accurate_on_tiny_datasets() {
        let ctx = ExperimentContext::new(Scale::Tiny, 5);
        let t = run(&ctx, &[PaperDataset::Krogan, PaperDataset::Dblp]);
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            assert!(
                row.avg_error <= 0.1,
                "{} theta={}: avg error {}",
                row.dataset,
                row.theta,
                row.avg_error
            );
            assert!(row.pct_with_error <= 10.0);
        }
        assert!(t.check_shape().is_empty());
        assert!(t.format().contains("Table 2"));
    }
}
