//! Experiment runner reproducing every table and figure of the paper,
//! plus the parallel-substrate benchmark and dataset utilities.
//!
//! ```text
//! experiments <id> [--scale tiny|small|medium] [--seed N]
//!             [--input PATH [--format snap|konect|ugsnap]
//!                           [--prob-model column|const:P|uniform:SEED[:L:H]|exp[:S]]]
//!
//! ids: table1 fig4 fig5 table2 fig6 table3 fig7 fig8 ablation all
//!
//! experiments parbench [--edges M] [--vertices N] [--threads 1,2,4]
//!                      [--repeats R] [--seed N] [--out BENCH_parallel.json]
//!                      [--input PATH [--format F] [--prob-model M]]
//!
//! experiments thetasweep [--rank core|truss|nucleus] [--edges M] [--vertices N]
//!                        [--seed N] [--thetas GRID] [--repeats R] [--out PATH]
//!                        [--input PATH [--format F] [--prob-model M]]
//!
//! experiments updates [--rank core|truss|nucleus] [--edges M] [--vertices N]
//!                     [--seed N] [--thetas GRID] [--batch B] [--out PATH]
//!                     [--input PATH [--format F] [--prob-model M]]
//!
//! experiments gen [--gen gnm|ba] [--edges M] [--vertices N] [--seed N]
//!                 [--attach K] --out PATH [--snapshot PATH]
//!
//! experiments million [--vertices N] [--attach K] [--seed N] [--threads T]
//!                     [--chunk-edges C] [--thetas GRID] [--out PATH]
//!
//! experiments bench-compare OLD.json NEW.json [--tolerance F]
//!                           [--deny-generation-skew]
//!
//! experiments serve [--port P] [--cache N] [--threads N] [--thetas GRID]
//!                   [--edges M] [--vertices N] [--seed N]
//!                   [--input PATH [--format F] [--prob-model M]]
//!                   [--oneshot [--out BENCH_serve.json]]
//!
//! experiments serve-client --addr HOST:PORT [--call METHOD]
//!                          [--params JSON] [--deadline-ms N]
//! ```
//!
//! With `--input`, the named experiment runs on the ingested graph
//! instead of the six synthetic datasets (loading goes through the
//! `.ugsnap` snapshot cache), and `parbench` additionally records the
//! file plus its ingestion timings as the dataset provenance in the JSON
//! report.  `gen` writes a seeded benchmark graph as a text edge list
//! (and optionally a snapshot), so CI can exercise the full
//! generate → ingest → snapshot → benchmark loop.

use nd_bench::json::Json;
use nd_bench::runner::ExperimentContext;
use nd_bench::{
    ablation, compare, fig4, fig5, fig6, fig7, fig8, million, parbench, serve, table1, table2,
    table3, thetasweep, updates,
};
use nd_datasets::{ExternalDataset, PaperDataset, Scale};
use ugraph::io::EdgeProbabilityModel;
use ugraph::InputFormat;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    let id = args[0].clone();
    if id == "parbench" {
        run_parbench(&args);
        return;
    }
    if id == "thetasweep" {
        run_thetasweep(&args);
        return;
    }
    if id == "updates" {
        run_updates(&args);
        return;
    }
    if id == "gen" {
        run_gen(&args);
        return;
    }
    if id == "million" {
        run_million(&args);
        return;
    }
    if id == "bench-compare" {
        run_bench_compare(&args);
        return;
    }
    if id == "serve" {
        run_serve(&args);
        return;
    }
    if id == "serve-client" {
        run_serve_client(&args);
        return;
    }
    let scale = parse_flag(&args, "--scale")
        .map(|s| match s.as_str() {
            "tiny" => Scale::Tiny,
            "small" => Scale::Small,
            "medium" => Scale::Medium,
            other => {
                eprintln!("unknown scale '{other}', using small");
                Scale::Small
            }
        })
        .unwrap_or(Scale::Small);
    let seed = parse_num_flag(&args, "--seed").unwrap_or(42u64);
    let mut ctx = ExperimentContext::new(scale, seed);
    if let Some(input) = parse_input(&args) {
        let start = std::time::Instant::now();
        let graph = input
            .load_cached()
            .unwrap_or_else(|e| fail(&format!("cannot load {}: {e}", input.path.display())));
        println!(
            "# input: {} ({} vertices, {} edges, loaded in {:.3}s via snapshot cache)",
            input.path.display(),
            graph.num_vertices(),
            graph.num_edges(),
            start.elapsed().as_secs_f64()
        );
        ctx = ctx.with_external_graph(input.name.clone(), graph);
    }

    println!("# experiment: {id}  scale: {scale:?}  seed: {seed}\n");
    let start = std::time::Instant::now();
    match id.as_str() {
        "table1" => run_table1(&ctx),
        "fig4" => run_fig4(&ctx),
        "fig5" => run_fig5(&ctx),
        "table2" => run_table2(&ctx),
        "fig6" => run_fig6(&ctx),
        "table3" => run_table3(&ctx),
        "fig7" => run_fig7(&ctx),
        "fig8" => run_fig8(&ctx),
        "ablation" => run_ablation(&ctx),
        "all" => {
            run_table1(&ctx);
            run_fig4(&ctx);
            run_fig5(&ctx);
            run_table2(&ctx);
            run_fig6(&ctx);
            run_table3(&ctx);
            run_fig7(&ctx);
            run_fig8(&ctx);
            run_ablation(&ctx);
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            print_usage();
            std::process::exit(1);
        }
    }
    println!(
        "\n# total wall-clock: {:.1}s",
        start.elapsed().as_secs_f64()
    );
}

fn print_usage() {
    println!(
        "usage: experiments <id> [--scale tiny|small|medium] [--seed N]\n\
         \x20               [--input PATH [--format snap|konect|ugsnap] [--prob-model M]]\n\
         ids: table1 fig4 fig5 table2 fig6 table3 fig7 fig8 ablation all\n\
         \n\
         experiments parbench [--edges M] [--vertices N] [--threads 1,2,4]\n\
         \x20                 [--repeats R] [--seed N] [--out BENCH_parallel.json]\n\
         \x20                 [--input PATH [--format F] [--prob-model M]]\n\
         \n\
         experiments thetasweep [--rank core|truss|nucleus] [--edges M]\n\
         \x20                   [--vertices N] [--seed N]\n\
         \x20                   [--thetas 0.02,0.05,0.1,0.25,0.5] [--repeats R]\n\
         \x20                   [--out BENCH_thetasweep.json]\n\
         \x20                   [--input PATH [--format F] [--prob-model M]]\n\
         \x20   one sweep index build vs independent per-threshold runs at the\n\
         \x20   chosen (r,s) rank (default nucleus; the grid is the eta/gamma\n\
         \x20   grid at the core/truss ranks); emits bench-parallel/v6 JSON\n\
         \x20   with rank + support_builds + amortization\n\
         \n\
         experiments updates [--rank core|truss|nucleus] [--edges M]\n\
         \x20                [--vertices N] [--seed N]\n\
         \x20                [--thetas 0.02,0.05,0.1,0.25,0.5] [--batch B]\n\
         \x20                [--out BENCH_updates.json]\n\
         \x20                [--input PATH [--format F] [--prob-model M]]\n\
         \x20   apply a seeded edge-update batch through the incremental\n\
         \x20   repair path, verify bit-identity against a full rebuild and\n\
         \x20   emit bench-updates/v1 JSON with repair-vs-rebuild dp_calls\n\
         \n\
         experiments gen [--gen gnm|ba] [--edges M] [--vertices N] [--seed N]\n\
         \x20            [--attach K] --out PATH [--snapshot PATH]\n\
         \x20   --gen ba is the power-law Barabasi-Albert generator of the\n\
         \x20   million-edge baseline (reaches 1M+ edges from --edges 1000000)\n\
         \n\
         experiments million [--vertices N] [--attach K] [--seed N]\n\
         \x20                [--threads T] [--chunk-edges C] [--thetas 0.1,0.5]\n\
         \x20                [--out BENCH_million.json]\n\
         \x20   million-edge memory-scaling baseline: seeded BA graph, snapshot\n\
         \x20   mmap-vs-owned reload (bit-identity asserted), 1-vs-T-thread\n\
         \x20   triangle phase, streaming index build, truss sweep; emits\n\
         \x20   bench-million/v1 JSON with peak_rss_bytes\n\
         \n\
         experiments bench-compare OLD.json NEW.json [--tolerance F]\n\
         \x20                      [--deny-generation-skew]\n\
         \x20   diffs two bench-parallel/*, bench-serve/*, bench-updates/* or\n\
         \x20   bench-million/* reports; exits 1 when a deterministic counter\n\
         \x20   (dp_calls, counts, reload_speedup, server stats, repair work)\n\
         \x20   regresses beyond the relative tolerance (default 0), or — with\n\
         \x20   --deny-generation-skew — when the two schema generations differ.\n\
         \x20   Wall times are never gated.\n\
         \n\
         experiments serve [--port P] [--cache N] [--threads N]\n\
         \x20              [--thetas 0.1,0.3] [--edges M] [--vertices N] [--seed N]\n\
         \x20              [--input PATH [--format F] [--prob-model M]]\n\
         \x20              [--oneshot [--out BENCH_serve.json]]\n\
         \x20   resident (r,s)-nucleus query service over TCP; with --oneshot,\n\
         \x20   runs the scripted self-test (every wire answer compared\n\
         \x20   bit-for-bit against the library, including across an\n\
         \x20   apply_updates batch) and emits bench-serve/v2 JSON\n\
         \n\
         experiments serve-client --addr HOST:PORT [--call METHOD]\n\
         \x20                     [--params JSON] [--deadline-ms N]\n\
         \x20   one call against a running server; prints the JSON result\n\
         \n\
         probability models: column | const:P | uniform:SEED[:LOW:HIGH] | exp[:SCALE]"
    );
}

/// Diffs two bench JSON files and gates on deterministic counters.
fn run_bench_compare(args: &[String]) {
    // Positional operands are whatever isn't a flag or a flag's value, so
    // `--tolerance 0.1` may appear before, between or after the files.
    let mut files: Vec<&str> = Vec::new();
    let mut tolerance = 0.0f64;
    let mut deny_skew = false;
    let mut args_iter = args[1..].iter();
    while let Some(arg) = args_iter.next() {
        if arg == "--tolerance" {
            let spec = args_iter
                .next()
                .unwrap_or_else(|| fail("bench-compare: --tolerance requires a value"));
            tolerance = spec
                .parse::<f64>()
                .unwrap_or_else(|_| fail(&format!("invalid --tolerance '{spec}'")));
        } else if arg == "--deny-generation-skew" {
            deny_skew = true;
        } else if arg.starts_with("--") {
            fail(&format!("bench-compare: unknown flag '{arg}'"));
        } else {
            files.push(arg.as_str());
        }
    }
    if files.len() != 2 {
        fail("bench-compare requires exactly two files: OLD.json NEW.json");
    }
    let (old_path, new_path) = (files[0], files[1]);
    let read = |path: &str| -> Json {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        Json::parse(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")))
    };
    let report =
        compare::compare(&read(old_path), &read(new_path), tolerance).unwrap_or_else(|e| fail(&e));
    println!("# bench-compare  old: {old_path}  new: {new_path}  tolerance: {tolerance}\n");
    println!("{}", report.format());
    if let Some(skew) = report.generation_skew() {
        if deny_skew {
            eprintln!(
                "generation skew denied: {skew}\n\
                 committed baselines must share one schema generation — regenerate \
                 the stale baseline so every gated counter is live"
            );
            std::process::exit(1);
        }
        println!("generation skew: {skew} (allowed; pass --deny-generation-skew to refuse)");
    }
    if !report.regressions().is_empty() {
        std::process::exit(1);
    }
}

fn fail(message: &str) -> ! {
    eprintln!("{message}");
    std::process::exit(1);
}

/// Parses a numeric flag strictly: an absent flag yields `None`, a
/// present-but-unparseable value is a loud error — never a silent fall
/// back to the default (which would benchmark the wrong graph and only
/// surface later as a confusing counts regression in `bench-compare`).
fn parse_num_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    parse_flag(args, flag).map(|spec| {
        spec.parse::<T>()
            .unwrap_or_else(|_| fail(&format!("invalid {flag} value '{spec}'")))
    })
}

/// Parses the shared `--input` / `--format` / `--prob-model` flag group.
fn parse_input(args: &[String]) -> Option<ExternalDataset> {
    let path = parse_flag(args, "--input")?;
    let format = match parse_flag(args, "--format") {
        Some(spec) => spec
            .parse::<InputFormat>()
            .unwrap_or_else(|e| fail(&e.to_string())),
        None => InputFormat::Snap,
    };
    let model = match parse_flag(args, "--prob-model") {
        Some(spec) => spec
            .parse::<EdgeProbabilityModel>()
            .unwrap_or_else(|e| fail(&e.to_string())),
        None => EdgeProbabilityModel::Column,
    };
    Some(ExternalDataset::new(path, format, model))
}

/// Runs the parallel-substrate benchmark and writes the JSON report.
fn run_parbench(args: &[String]) {
    let mut config = parbench::ParBenchConfig::default();
    if let Some(m) = parse_num_flag(args, "--edges") {
        config.edges = m;
        // Keep the default density (average degree 50) unless --vertices
        // overrides it below.
        config.vertices = (m / 25).max(4);
    }
    if let Some(n) = parse_num_flag(args, "--vertices") {
        config.vertices = n;
    }
    if let Some(seed) = parse_num_flag(args, "--seed") {
        config.seed = seed;
    }
    if let Some(r) = parse_num_flag(args, "--repeats") {
        config.repeats = r;
    }
    if let Some(list) = parse_flag(args, "--threads") {
        let mut threads = Vec::new();
        for token in list.split(',') {
            match token.trim().parse::<usize>() {
                Ok(0) | Err(_) => {
                    eprintln!("invalid --threads value '{}' (expected e.g. 1,2,4)", token);
                    std::process::exit(1);
                }
                // 1 is the always-measured sequential baseline.
                Ok(1) => {}
                Ok(t) => threads.push(t),
            }
        }
        // May legitimately be empty (`--threads 1` = baseline only).
        config.threads = threads;
    }
    config.input = parse_input(args);
    let out_path = parse_flag(args, "--out").unwrap_or_else(|| "BENCH_parallel.json".to_string());

    match &config.input {
        Some(input) => println!(
            "# experiment: parbench  input: {} ({})  threads: {:?}  repeats: {}\n",
            input.path.display(),
            input.format,
            config.threads,
            config.repeats
        ),
        None => println!(
            "# experiment: parbench  vertices: {}  edges: {}  threads: {:?}  repeats: {}  seed: {}\n",
            config.vertices, config.edges, config.threads, config.repeats, config.seed
        ),
    }
    let report = parbench::run(&config).unwrap_or_else(|e| fail(&e.to_string()));
    println!("{}", report.format());
    std::fs::write(&out_path, report.to_json())
        .unwrap_or_else(|e| fail(&format!("cannot write {out_path}: {e}")));
    println!("wrote {out_path}");
}

/// Runs the threshold-sweep amortization benchmark at the requested
/// rank and writes the v5 JSON report.
fn run_thetasweep(args: &[String]) {
    let mut config = thetasweep::SweepBenchConfig::default();
    // Same policy as the numeric flags: an absent --rank defaults to
    // nucleus, a present-but-unknown value fails loudly with the typed
    // parse error instead of silently benchmarking the wrong algorithm.
    if let Some(spec) = parse_flag(args, "--rank") {
        config.rank = spec
            .parse::<nucleus::Rank>()
            .unwrap_or_else(|e| fail(&format!("thetasweep: {e}")));
    }
    if let Some(m) = parse_num_flag(args, "--edges") {
        config.edges = m;
        // Keep the default density (average degree 50) unless --vertices
        // overrides it below.
        config.vertices = (m / 25).max(4);
    }
    if let Some(n) = parse_num_flag(args, "--vertices") {
        config.vertices = n;
    }
    if let Some(seed) = parse_num_flag(args, "--seed") {
        config.seed = seed;
    }
    if let Some(r) = parse_num_flag(args, "--repeats") {
        config.repeats = r;
    }
    if let Some(thetas) = parse_thetas(args) {
        config.thetas = thetas;
    }
    // Malformed grids (empty, NaN, out-of-range, unsorted, duplicates)
    // fail here with the typed validation message, before any work.
    if let Err(e) = nucleus::ThetaSweep::new(nucleus::SweepConfig::exact(config.thetas.clone())) {
        fail(&format!("thetasweep: {e}"));
    }
    config.input = parse_input(args);
    let out_path = parse_flag(args, "--out").unwrap_or_else(|| "BENCH_thetasweep.json".to_string());

    match &config.input {
        Some(input) => println!(
            "# experiment: thetasweep  rank: {}  input: {} ({})  grid: {:?}  repeats: {}\n",
            config.rank,
            input.path.display(),
            input.format,
            config.thetas,
            config.repeats
        ),
        None => println!(
            "# experiment: thetasweep  rank: {}  vertices: {}  edges: {}  grid: {:?}  repeats: {}  seed: {}\n",
            config.rank, config.vertices, config.edges, config.thetas, config.repeats, config.seed
        ),
    }
    let report = thetasweep::run_bench(&config).unwrap_or_else(|e| fail(&e.to_string()));
    println!("{}", report.format());
    std::fs::write(&out_path, report.to_json())
        .unwrap_or_else(|e| fail(&format!("cannot write {out_path}: {e}")));
    println!("wrote {out_path}");
}

/// Runs the incremental-update benchmark at the requested rank and
/// writes the `bench-updates/v1` JSON report.
fn run_updates(args: &[String]) {
    let mut config = updates::UpdateBenchConfig::default();
    if let Some(spec) = parse_flag(args, "--rank") {
        config.rank = spec
            .parse::<nucleus::Rank>()
            .unwrap_or_else(|e| fail(&format!("updates: {e}")));
    }
    if let Some(m) = parse_num_flag(args, "--edges") {
        config.edges = m;
        // Keep the default density (average degree 50) unless --vertices
        // overrides it below.
        config.vertices = (m / 25).max(4);
    }
    if let Some(n) = parse_num_flag(args, "--vertices") {
        config.vertices = n;
    }
    if let Some(seed) = parse_num_flag(args, "--seed") {
        config.seed = seed;
    }
    if let Some(b) = parse_num_flag(args, "--batch") {
        config.batch = b;
    }
    if let Some(thetas) = parse_thetas(args) {
        config.thetas = thetas;
    }
    if let Err(e) = nucleus::ThetaSweep::new(nucleus::SweepConfig::exact(config.thetas.clone())) {
        fail(&format!("updates: {e}"));
    }
    config.input = parse_input(args);
    let out_path = parse_flag(args, "--out").unwrap_or_else(|| "BENCH_updates.json".to_string());

    match &config.input {
        Some(input) => println!(
            "# experiment: updates  rank: {}  input: {} ({})  grid: {:?}  batch: {}\n",
            config.rank,
            input.path.display(),
            input.format,
            config.thetas,
            config.batch
        ),
        None => println!(
            "# experiment: updates  rank: {}  vertices: {}  edges: {}  grid: {:?}  batch: {}  seed: {}\n",
            config.rank, config.vertices, config.edges, config.thetas, config.batch, config.seed
        ),
    }
    let report = updates::run(&config).unwrap_or_else(|e| fail(&e.to_string()));
    println!("{}", report.format());
    std::fs::write(&out_path, report.to_json())
        .unwrap_or_else(|e| fail(&format!("cannot write {out_path}: {e}")));
    println!("wrote {out_path}");
}

/// Generates a seeded benchmark graph and writes it as a text edge list
/// (and optionally a `.ugsnap` snapshot).  `--gen gnm` (the default) is
/// the uniform G(n, m) of the 50k benches; `--gen ba` is the power-law
/// Barabási–Albert generator of the million-edge baseline, which reaches
/// 1M+ edges from `--edges 1000000` (or `--vertices`/`--attach`).
fn run_gen(args: &[String]) {
    let generator = parse_flag(args, "--gen").unwrap_or_else(|| "gnm".to_string());
    let seed: u64 = parse_num_flag(args, "--seed").unwrap_or(42);
    let Some(out) = parse_flag(args, "--out") else {
        fail("gen requires --out PATH");
    };
    let graph = match generator.as_str() {
        "gnm" => {
            let edges: usize = parse_num_flag(args, "--edges").unwrap_or(50_000);
            let vertices: usize = parse_num_flag(args, "--vertices").unwrap_or((edges / 25).max(4));
            parbench::generate_graph(vertices, edges, seed)
        }
        "ba" => {
            let attach: usize = parse_num_flag(args, "--attach").unwrap_or(5);
            if attach == 0 {
                fail("gen: --attach must be at least 1");
            }
            // --vertices wins; otherwise derive the vertex count that
            // reaches the requested edge count (clique on attach+1 seed
            // vertices plus `attach` edges per later vertex).
            let vertices: usize = match parse_num_flag(args, "--vertices") {
                Some(n) => n,
                None => {
                    let edges: usize = parse_num_flag(args, "--edges").unwrap_or(1_000_000);
                    let clique = attach * (attach + 1) / 2;
                    edges.saturating_sub(clique).div_ceil(attach) + attach + 1
                }
            };
            let config = million::MillionBenchConfig {
                vertices,
                attach,
                seed,
                ..million::MillionBenchConfig::default()
            };
            million::generate_million_graph(&config)
        }
        other => fail(&format!(
            "gen: unknown --gen '{other}' (expected gnm or ba)"
        )),
    };
    ugraph::io::write_edge_list_file(&graph, &out)
        .unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
    println!(
        "wrote {out}: {} vertices, {} edges ({generator}, seed {seed})",
        graph.num_vertices(),
        graph.num_edges()
    );
    if let Some(snap) = parse_flag(args, "--snapshot") {
        ugraph::io::write_snapshot_file(&graph, &snap)
            .unwrap_or_else(|e| fail(&format!("cannot write {snap}: {e}")));
        println!("wrote {snap} (ugsnap v{})", ugraph::io::SNAPSHOT_VERSION);
    }
}

/// Runs the million-edge memory-scaling baseline and writes the
/// `bench-million/v1` JSON report.
fn run_million(args: &[String]) {
    let mut config = million::MillionBenchConfig::default();
    if let Some(n) = parse_num_flag(args, "--vertices") {
        config.vertices = n;
    }
    if let Some(k) = parse_num_flag::<usize>(args, "--attach") {
        if k == 0 {
            fail("million: --attach must be at least 1");
        }
        config.attach = k;
    }
    if let Some(seed) = parse_num_flag(args, "--seed") {
        config.seed = seed;
    }
    if let Some(t) = parse_num_flag::<usize>(args, "--threads") {
        if t == 0 {
            fail("million: --threads must be at least 1");
        }
        config.threads = t;
    }
    if let Some(c) = parse_num_flag::<usize>(args, "--chunk-edges") {
        if c == 0 {
            fail("million: --chunk-edges must be at least 1");
        }
        config.streaming_chunk_edges = c;
    }
    if let Some(thetas) = parse_thetas(args) {
        config.thetas = thetas;
    }
    if let Err(e) = nucleus::ThetaSweep::new(nucleus::SweepConfig::exact(config.thetas.clone())) {
        fail(&format!("million: {e}"));
    }
    let out_path = parse_flag(args, "--out").unwrap_or_else(|| "BENCH_million.json".to_string());
    println!(
        "# experiment: million  vertices: {}  attach: {}  (~{} edges)  threads: {}  grid: {:?}  seed: {}\n",
        config.vertices,
        config.attach,
        config.expected_edges(),
        config.threads,
        config.thetas,
        config.seed
    );
    let report = million::run(&config);
    println!("{}", report.format());
    std::fs::write(&out_path, report.to_json())
        .unwrap_or_else(|e| fail(&format!("cannot write {out_path}: {e}")));
    println!("wrote {out_path}");
}

/// Parses the shared `--thetas 0.1,0.3` grid flag.
fn parse_thetas(args: &[String]) -> Option<Vec<f64>> {
    parse_flag(args, "--thetas").map(|list| {
        let mut thetas = Vec::new();
        for token in list.split(',') {
            match token.trim().parse::<f64>() {
                Ok(t) => thetas.push(t),
                Err(_) => fail(&format!(
                    "invalid --thetas value '{token}' (expected e.g. 0.05,0.1,0.5)"
                )),
            }
        }
        thetas
    })
}

/// Boots the resident query service — or, with `--oneshot`, runs the
/// scripted self-test against a freshly booted server and writes the
/// `bench-serve/v2` report (the CI `serve-smoke` surface).
fn run_serve(args: &[String]) {
    let mut config = serve::ServeBenchConfig::default();
    if let Some(m) = parse_num_flag(args, "--edges") {
        config.edges = m;
        // Keep the default density (average degree 50) unless --vertices
        // overrides it below.
        config.vertices = (m / 25).max(4);
    }
    if let Some(n) = parse_num_flag(args, "--vertices") {
        config.vertices = n;
    }
    if let Some(seed) = parse_num_flag(args, "--seed") {
        config.seed = seed;
    }
    if let Some(c) = parse_num_flag(args, "--cache") {
        config.cache_capacity = c;
    }
    if let Some(t) = parse_num_flag::<usize>(args, "--threads") {
        if t == 0 {
            fail("serve: --threads must be at least 1");
        }
        config.threads = Some(t);
    }
    if let Some(thetas) = parse_thetas(args) {
        if thetas.len() < 2 {
            fail("serve: --thetas needs a grid of at least 2 points");
        }
        config.thetas = thetas;
    }
    config.input = parse_input(args);

    if args.iter().any(|a| a == "--oneshot") {
        let out_path = parse_flag(args, "--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
        match &config.input {
            Some(input) => println!(
                "# experiment: serve --oneshot  input: {} ({})  grid: {:?}\n",
                input.path.display(),
                input.format,
                config.thetas
            ),
            None => println!(
                "# experiment: serve --oneshot  vertices: {}  edges: {}  grid: {:?}  seed: {}\n",
                config.vertices, config.edges, config.thetas, config.seed
            ),
        }
        let report = serve::run(&config).unwrap_or_else(|e| fail(&e.to_string()));
        println!("{}", report.format());
        std::fs::write(&out_path, report.to_json())
            .unwrap_or_else(|e| fail(&format!("cannot write {out_path}: {e}")));
        println!("wrote {out_path}");
        if !report.passed() {
            std::process::exit(1);
        }
        return;
    }

    // Resident mode: load once (through the snapshot cache, like the
    // generic experiments), bind, and serve until a client asks for
    // shutdown.
    let graph = match &config.input {
        Some(input) => input
            .load_cached()
            .unwrap_or_else(|e| fail(&format!("cannot load {}: {e}", input.path.display()))),
        None => parbench::generate_graph(config.vertices, config.edges, config.seed),
    };
    let port: u16 = parse_num_flag(args, "--port").unwrap_or(0);
    let parallelism = match config.threads {
        Some(t) => ugraph::par::Parallelism::fixed(t),
        None => ugraph::par::Parallelism::Auto,
    };
    let core = nd_server::ServerCore::new(
        graph,
        nd_server::ServerConfig {
            cache_capacity: config.cache_capacity,
            parallelism,
            ..nd_server::ServerConfig::default()
        },
    );
    let server = nd_server::Server::bind(format!("127.0.0.1:{port}"), core)
        .unwrap_or_else(|e| fail(&format!("cannot bind 127.0.0.1:{port}: {e}")));
    match server.local_addr() {
        Ok(addr) => println!("serving on {addr} (send a 'shutdown' call to stop)"),
        Err(e) => fail(&format!("cannot read the bound address: {e}")),
    }
    let stats = server.run();
    println!("server drained; final counters:");
    for (name, value) in stats.fields() {
        println!("  {name}: {value}");
    }
}

/// One scripted call against a running server: connect, send, print the
/// JSON result (or the typed error) and exit accordingly.
fn run_serve_client(args: &[String]) {
    let Some(addr) = parse_flag(args, "--addr") else {
        fail("serve-client requires --addr HOST:PORT");
    };
    let method = parse_flag(args, "--call").unwrap_or_else(|| "ping".to_string());
    let params = match parse_flag(args, "--params") {
        Some(text) => {
            Json::parse(&text).unwrap_or_else(|e| fail(&format!("invalid --params: {e}")))
        }
        None => Json::Null,
    };
    let deadline_ms = parse_num_flag::<u64>(args, "--deadline-ms");
    let mut client = nd_server::Client::connect(addr.as_str())
        .unwrap_or_else(|e| fail(&format!("cannot connect to {addr}: {e}")));
    match client.call_with_deadline(&method, params, deadline_ms) {
        Ok(result) => println!("{}", result.to_json_string()),
        Err(e) => fail(&e.to_string()),
    }
}

fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn report_shape(violations: &[String]) {
    if violations.is_empty() {
        println!("shape check: OK (matches the paper's qualitative claims)");
    } else {
        println!("shape check: {} deviation(s):", violations.len());
        for v in violations {
            println!("  - {v}");
        }
    }
}

/// The datasets a multi-dataset experiment iterates: collapsed to one
/// when `--input` installed an external graph.
fn datasets(ctx: &ExperimentContext, requested: &[PaperDataset]) -> Vec<PaperDataset> {
    ctx.effective_datasets(requested)
}

fn run_table1(ctx: &ExperimentContext) {
    println!(
        "{}",
        table1::run(ctx, &datasets(ctx, &PaperDataset::all())).format()
    );
}

fn run_fig4(ctx: &ExperimentContext) {
    let fig = fig4::run(ctx, &datasets(ctx, &PaperDataset::all()));
    println!("{}", fig.format());
    report_shape(&fig.check_shape());
    println!();
}

fn run_fig5(ctx: &ExperimentContext) {
    let fig = fig5::run(ctx, &datasets(ctx, &PaperDataset::all()), 2, 200);
    println!("{}", fig.format());
    report_shape(&fig.check_shape());
    println!();
}

fn run_table2(ctx: &ExperimentContext) {
    let t = table2::run(ctx, &datasets(ctx, &PaperDataset::all()));
    println!("{}", t.format());
    report_shape(&t.check_shape());
    println!();
}

fn run_fig6(ctx: &ExperimentContext) {
    let fig = fig6::run(ctx, fig6::SAMPLES);
    println!("{}", fig.format());
    report_shape(&fig.check_shape());
    println!();
}

fn run_table3(ctx: &ExperimentContext) {
    let t = table3::run(
        ctx,
        &datasets(
            ctx,
            &[
                PaperDataset::Dblp,
                PaperDataset::Pokec,
                PaperDataset::Biomine,
            ],
        ),
    );
    println!("{}", t.format());
    report_shape(&t.check_shape());
    println!();
}

fn run_fig7(ctx: &ExperimentContext) {
    let fig = fig7::run(ctx, PaperDataset::Flickr);
    println!("{}", fig.format());
    report_shape(&fig.check_shape());
    println!();
}

fn run_fig8(ctx: &ExperimentContext) {
    let fig = fig8::run(
        ctx,
        &datasets(
            ctx,
            &[
                PaperDataset::Krogan,
                PaperDataset::Flickr,
                PaperDataset::Dblp,
            ],
        ),
        3,
        200,
    );
    println!("{}", fig.format());
    report_shape(&fig.check_shape());
    println!();
}

fn run_ablation(ctx: &ExperimentContext) {
    let samples = ablation::run_sample_ablation(ctx, &[50, 150, 500, 1500, 5000]);
    println!("{}", samples.format());
    println!();
    let cost = ablation::run_scoring_cost(ctx, &[16, 64, 256, 1024], 200);
    println!("{}", ablation::format_scoring_cost(&cost));
}
