//! Experiment runner reproducing every table and figure of the paper,
//! plus the parallel-substrate benchmark and dataset utilities.
//!
//! ```text
//! experiments <id> [--scale tiny|small|medium] [--seed N]
//!             [--input PATH [--format snap|konect|ugsnap]
//!                           [--prob-model column|const:P|uniform:SEED[:L:H]|exp[:S]]]
//!
//! ids: table1 fig4 fig5 table2 fig6 table3 fig7 fig8 ablation all
//!
//! experiments parbench [--edges M] [--vertices N] [--threads 1,2,4]
//!                      [--repeats R] [--seed N] [--out BENCH_parallel.json]
//!                      [--input PATH [--format F] [--prob-model M]]
//!
//! experiments thetasweep [--rank core|truss|nucleus] [--edges M] [--vertices N]
//!                        [--seed N] [--thetas GRID] [--repeats R] [--out PATH]
//!                        [--input PATH [--format F] [--prob-model M]]
//!
//! experiments updates [--rank core|truss|nucleus] [--edges M] [--vertices N]
//!                     [--seed N] [--thetas GRID] [--batch B] [--out PATH]
//!                     [--input PATH [--format F] [--prob-model M]]
//!
//! experiments gen [--gen gnm|ba] [--edges M] [--vertices N] [--seed N]
//!                 [--attach K] --out PATH [--snapshot PATH]
//!
//! experiments million [--vertices N] [--attach K] [--seed N] [--threads T]
//!                     [--chunk-edges C] [--thetas GRID] [--out PATH]
//!
//! experiments matrix [--scenarios DIR] [--only NAME[,NAME...]] [--tag TAG]
//!                    [--dry-run] [--out BENCH_matrix.json]
//!
//! experiments bench-compare OLD.json NEW.json [--tolerance F]
//!                           [--deny-generation-skew]
//!
//! experiments serve [--port P] [--cache N] [--threads N] [--thetas GRID]
//!                   [--edges M] [--vertices N] [--seed N]
//!                   [--input PATH [--format F] [--prob-model M]]
//!                   [--oneshot [--out BENCH_serve.json]]
//!
//! experiments serve-client --addr HOST:PORT [--call METHOD]
//!                          [--params JSON] [--deadline-ms N]
//! ```
//!
//! With `--input`, the named experiment runs on the ingested graph
//! instead of the six synthetic datasets (loading goes through the
//! `.ugsnap` snapshot cache), and `parbench` additionally records the
//! file plus its ingestion timings as the dataset provenance in the JSON
//! report.  `gen` writes a seeded benchmark graph as a text edge list
//! (and optionally a snapshot), so CI can exercise the full
//! generate → ingest → snapshot → benchmark loop.
//!
//! Every bench subcommand and every paper experiment is declared in the
//! scenario registry (`nd_bench::registry`); the subcommand arms here
//! only translate flags into a [`Spec`] and hand it to the registry's
//! single dispatch path.  `experiments matrix` enumerates the whole
//! registry — builtins plus `crates/bench/scenarios/*.toml` — runs it,
//! and emits the `bench-matrix/v1` report CI gates.

use nd_bench::json::Json;
use nd_bench::registry::spec::{DatasetSpec, Params, Spec, Workload};
use nd_bench::registry::{matrix, run, Registry};
use nd_bench::runner::ExperimentContext;
use nd_bench::{cli, compare, million, parbench};
use nd_datasets::Scale;
use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    let id = args[0].clone();
    match id.as_str() {
        "parbench" => return run_bench_arm(Workload::Parbench, &args),
        "thetasweep" => return run_bench_arm(Workload::Thetasweep, &args),
        "updates" => return run_bench_arm(Workload::Updates, &args),
        "million" => return run_bench_arm(Workload::Million, &args),
        "matrix" => return run_matrix_cmd(&args),
        "gen" => return run_gen(&args),
        "bench-compare" => return run_bench_compare(&args),
        "serve" => return run_serve(&args),
        "serve-client" => return run_serve_client(&args),
        _ => {}
    }

    // Paper experiments: one dispatch through the registry's paper
    // runner, on a context built from --scale/--seed/--input.
    let experiments: Vec<Workload> = if id == "all" {
        vec![
            Workload::Table1,
            Workload::Fig4,
            Workload::Fig5,
            Workload::Table2,
            Workload::Fig6,
            Workload::Table3,
            Workload::Fig7,
            Workload::Fig8,
            Workload::Ablation,
        ]
    } else {
        match id.parse::<Workload>() {
            Ok(workload) if workload.is_paper() => vec![workload],
            _ => {
                eprintln!("unknown experiment '{id}'");
                print_usage();
                std::process::exit(1);
            }
        }
    };
    let scale = parse_flag(&args, "--scale")
        .map(|s| match s.as_str() {
            "tiny" => Scale::Tiny,
            "small" => Scale::Small,
            "medium" => Scale::Medium,
            other => {
                eprintln!("unknown scale '{other}', using small");
                Scale::Small
            }
        })
        .unwrap_or(Scale::Small);
    let seed = parse_num_flag(&args, "--seed").unwrap_or(42u64);
    let mut ctx = ExperimentContext::new(scale, seed);
    if let Some(input) = parse_input(&args) {
        let start = std::time::Instant::now();
        let graph = input
            .load_cached()
            .unwrap_or_else(|e| fail(&format!("cannot load {}: {e}", input.path.display())));
        println!(
            "# input: {} ({} vertices, {} edges, loaded in {:.3}s via snapshot cache)",
            input.path.display(),
            graph.num_vertices(),
            graph.num_edges(),
            start.elapsed().as_secs_f64()
        );
        ctx = ctx.with_external_graph(input.name.clone(), graph);
    }

    println!("# experiment: {id}  scale: {scale:?}  seed: {seed}\n");
    let start = std::time::Instant::now();
    for workload in experiments {
        print!("{}", run::run_paper(&ctx, workload).text);
    }
    println!(
        "\n# total wall-clock: {:.1}s",
        start.elapsed().as_secs_f64()
    );
}

fn print_usage() {
    println!(
        "usage: experiments <id> [--scale tiny|small|medium] [--seed N]\n\
         \x20               [--input PATH [--format snap|konect|ugsnap] [--prob-model M]]\n\
         ids: table1 fig4 fig5 table2 fig6 table3 fig7 fig8 ablation all\n\
         \n\
         experiments parbench [--edges M] [--vertices N] [--threads 1,2,4]\n\
         \x20                 [--repeats R] [--seed N] [--out BENCH_parallel.json]\n\
         \x20                 [--input PATH [--format F] [--prob-model M]]\n\
         \n\
         experiments thetasweep [--rank core|truss|nucleus] [--edges M]\n\
         \x20                   [--vertices N] [--seed N]\n\
         \x20                   [--thetas 0.02,0.05,0.1,0.25,0.5] [--repeats R]\n\
         \x20                   [--out BENCH_thetasweep.json]\n\
         \x20                   [--input PATH [--format F] [--prob-model M]]\n\
         \x20   one sweep index build vs independent per-threshold runs at the\n\
         \x20   chosen (r,s) rank (default nucleus; the grid is the eta/gamma\n\
         \x20   grid at the core/truss ranks); emits bench-parallel/v6 JSON\n\
         \x20   with rank + support_builds + amortization\n\
         \n\
         experiments updates [--rank core|truss|nucleus] [--edges M]\n\
         \x20                [--vertices N] [--seed N]\n\
         \x20                [--thetas 0.02,0.05,0.1,0.25,0.5] [--batch B]\n\
         \x20                [--out BENCH_updates.json]\n\
         \x20                [--input PATH [--format F] [--prob-model M]]\n\
         \x20   apply a seeded edge-update batch through the incremental\n\
         \x20   repair path, verify bit-identity against a full rebuild and\n\
         \x20   emit bench-updates/v1 JSON with repair-vs-rebuild dp_calls\n\
         \n\
         experiments gen [--gen gnm|ba] [--edges M] [--vertices N] [--seed N]\n\
         \x20            [--attach K] --out PATH [--snapshot PATH]\n\
         \x20   --gen ba is the power-law Barabasi-Albert generator of the\n\
         \x20   million-edge baseline (reaches 1M+ edges from --edges 1000000)\n\
         \n\
         experiments million [--vertices N] [--attach K] [--seed N]\n\
         \x20                [--threads T] [--chunk-edges C] [--thetas 0.1,0.5]\n\
         \x20                [--out BENCH_million.json]\n\
         \x20   million-edge memory-scaling baseline: seeded BA graph, snapshot\n\
         \x20   mmap-vs-owned reload (bit-identity asserted), 1-vs-T-thread\n\
         \x20   triangle phase, streaming index build, truss sweep; emits\n\
         \x20   bench-million/v1 JSON with peak_rss_bytes\n\
         \n\
         experiments matrix [--scenarios DIR] [--only NAME[,NAME...]] [--tag TAG]\n\
         \x20               [--dry-run] [--out BENCH_matrix.json]\n\
         \x20   enumerate the scenario registry (builtins + scenarios/*.toml),\n\
         \x20   run every selected scenario through its driver, judge declared\n\
         \x20   counter expectations, and emit one bench-matrix/v1 report that\n\
         \x20   bench-compare gates at tolerance 0; --dry-run lists without\n\
         \x20   running\n\
         \n\
         experiments bench-compare OLD.json NEW.json [--tolerance F]\n\
         \x20                      [--deny-generation-skew]\n\
         \x20   diffs two bench-parallel/*, bench-serve/*, bench-updates/*,\n\
         \x20   bench-million/* or bench-matrix/* reports; exits 1 when a\n\
         \x20   deterministic counter (dp_calls, counts, reload_speedup, server\n\
         \x20   stats, repair work, matrix scenario counters) regresses beyond\n\
         \x20   the relative tolerance (default 0), or — with\n\
         \x20   --deny-generation-skew — when the two schema generations differ.\n\
         \x20   Wall times are never gated.\n\
         \n\
         experiments serve [--port P] [--cache N] [--threads N]\n\
         \x20              [--thetas 0.1,0.3] [--edges M] [--vertices N] [--seed N]\n\
         \x20              [--input PATH [--format F] [--prob-model M]]\n\
         \x20              [--oneshot [--out BENCH_serve.json]]\n\
         \x20   resident (r,s)-nucleus query service over TCP; with --oneshot,\n\
         \x20   runs the scripted self-test (every wire answer compared\n\
         \x20   bit-for-bit against the library, including across an\n\
         \x20   apply_updates batch) and emits bench-serve/v2 JSON\n\
         \n\
         experiments serve-client --addr HOST:PORT [--call METHOD]\n\
         \x20                     [--params JSON] [--deadline-ms N]\n\
         \x20   one call against a running server; prints the JSON result\n\
         \n\
         probability models: column | const:P | uniform:SEED[:LOW:HIGH] | exp[:SCALE]"
    );
}

/// Diffs two bench JSON files and gates on deterministic counters.
fn run_bench_compare(args: &[String]) {
    // Positional operands are whatever isn't a flag or a flag's value, so
    // `--tolerance 0.1` may appear before, between or after the files.
    let mut files: Vec<&str> = Vec::new();
    let mut tolerance = 0.0f64;
    let mut deny_skew = false;
    let mut args_iter = args[1..].iter();
    while let Some(arg) = args_iter.next() {
        if arg == "--tolerance" {
            let spec = args_iter
                .next()
                .unwrap_or_else(|| fail("bench-compare: --tolerance requires a value"));
            tolerance = spec
                .parse::<f64>()
                .unwrap_or_else(|_| fail(&format!("invalid --tolerance '{spec}'")));
        } else if arg == "--deny-generation-skew" {
            deny_skew = true;
        } else if arg.starts_with("--") {
            fail(&format!("bench-compare: unknown flag '{arg}'"));
        } else {
            files.push(arg.as_str());
        }
    }
    if files.len() != 2 {
        fail("bench-compare requires exactly two files: OLD.json NEW.json");
    }
    let (old_path, new_path) = (files[0], files[1]);
    let read = |path: &str| -> Json {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        Json::parse(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")))
    };
    let report =
        compare::compare(&read(old_path), &read(new_path), tolerance).unwrap_or_else(|e| fail(&e));
    println!("# bench-compare  old: {old_path}  new: {new_path}  tolerance: {tolerance}\n");
    println!("{}", report.format());
    if let Some(skew) = report.generation_skew() {
        if deny_skew {
            eprintln!(
                "generation skew denied: {skew}\n\
                 committed baselines must share one schema generation — regenerate \
                 the stale baseline so every gated counter is live"
            );
            std::process::exit(1);
        }
        println!("generation skew: {skew} (allowed; pass --deny-generation-skew to refuse)");
    }
    if !report.regressions().is_empty() {
        std::process::exit(1);
    }
}

fn fail(message: &str) -> ! {
    eprintln!("{message}");
    std::process::exit(1);
}

/// [`cli::parse_flag`] with the binary's uniform exit-on-error behaviour.
fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    cli::parse_flag(args, flag).unwrap_or_else(|e| fail(&e))
}

/// [`cli::parse_num_flag`] with the binary's uniform exit-on-error behaviour.
fn parse_num_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    cli::parse_num_flag(args, flag).unwrap_or_else(|e| fail(&e))
}

/// The `--input/--format/--prob-model` trio as a loader-facing dataset.
fn parse_input(args: &[String]) -> Option<nd_datasets::ExternalDataset> {
    cli::IngestArgs::from_args(args)
        .unwrap_or_else(|e| fail(&e))
        .map(|ingest| ingest.to_dataset())
}

/// The dataset a bench subcommand's flags describe: `--input` wins;
/// otherwise a seeded generated graph (`gen`'s G(n, m) for the 50k
/// benches, BA for `million`).
fn bench_dataset(workload: Workload, args: &[String]) -> DatasetSpec {
    let seed = parse_num_flag(args, "--seed").unwrap_or(42u64);
    if workload == Workload::Million {
        // million never took --input; its graph is always the seeded BA.
        let default = million::MillionBenchConfig::default();
        let attach = parse_num_flag::<usize>(args, "--attach").unwrap_or(default.attach);
        if attach == 0 {
            fail("million: --attach must be at least 1");
        }
        return DatasetSpec::Ba {
            vertices: parse_num_flag(args, "--vertices").unwrap_or(default.vertices),
            attach,
            seed,
        };
    }
    if let Some(ingest) = cli::IngestArgs::from_args(args).unwrap_or_else(|e| fail(&e)) {
        return DatasetSpec::File {
            path: ingest.path,
            format: ingest.format,
            prob_model: ingest.prob_model,
        };
    }
    match parse_num_flag::<usize>(args, "--edges") {
        Some(edges) => DatasetSpec::Generated {
            edges,
            // --vertices overrides the average-degree-50 derivation.
            vertices: parse_num_flag(args, "--vertices"),
            seed,
        },
        None => {
            let default = parbench::ParBenchConfig::default();
            DatasetSpec::Generated {
                edges: default.edges,
                vertices: Some(parse_num_flag(args, "--vertices").unwrap_or(default.vertices)),
                seed,
            }
        }
    }
}

/// Translates one bench subcommand's flags into its registry spec —
/// after this point the run is identical to a matrix-driven one.
fn bench_spec(workload: Workload, args: &[String]) -> Spec {
    let mut params = Params::default();
    match workload {
        Workload::Parbench => {
            params.repeats = parse_num_flag(args, "--repeats");
            params.threads = cli::parse_threads(args).unwrap_or_else(|e| fail(&e));
        }
        Workload::Thetasweep => {
            params.rank = parse_rank(args, "thetasweep");
            params.thetas = cli::parse_thetas(args).unwrap_or_else(|e| fail(&e));
            params.repeats = parse_num_flag(args, "--repeats");
        }
        Workload::Updates => {
            params.rank = parse_rank(args, "updates");
            params.thetas = cli::parse_thetas(args).unwrap_or_else(|e| fail(&e));
            params.batch = parse_num_flag(args, "--batch");
        }
        Workload::Serve => {
            params.thetas = cli::parse_thetas(args).unwrap_or_else(|e| fail(&e));
            params.cache = parse_num_flag(args, "--cache");
            params.pool = parse_num_flag::<usize>(args, "--threads").map(|t| {
                if t == 0 {
                    fail("serve: --threads must be at least 1");
                }
                t
            });
        }
        Workload::Million => {
            params.thetas = cli::parse_thetas(args).unwrap_or_else(|e| fail(&e));
            params.pool = parse_num_flag::<usize>(args, "--threads").map(|t| {
                if t == 0 {
                    fail("million: --threads must be at least 1");
                }
                t
            });
            params.chunk_edges = parse_num_flag::<usize>(args, "--chunk-edges").map(|c| {
                if c == 0 {
                    fail("million: --chunk-edges must be at least 1");
                }
                c
            });
        }
        _ => unreachable!("bench_spec is only called for bench workloads"),
    }
    Spec {
        name: workload.to_string(),
        workload,
        tags: Vec::new(),
        tolerance: 0.0,
        dataset: bench_dataset(workload, args),
        params,
        expect: Vec::new(),
    }
}

fn parse_rank(args: &[String], subcommand: &str) -> Option<nucleus::Rank> {
    parse_flag(args, "--rank").map(|spec| {
        spec.parse::<nucleus::Rank>()
            .unwrap_or_else(|e| fail(&format!("{subcommand}: {e}")))
    })
}

/// Runs one bench subcommand through the registry dispatch: header,
/// driver, report table, JSON file — exactly the output the hand-wired
/// arms produced.
fn run_bench_arm(workload: Workload, args: &[String]) {
    let spec = bench_spec(workload, args);
    let out_default = match workload {
        Workload::Parbench => "BENCH_parallel.json",
        Workload::Thetasweep => "BENCH_thetasweep.json",
        Workload::Updates => "BENCH_updates.json",
        Workload::Serve => "BENCH_serve.json",
        Workload::Million => "BENCH_million.json",
        _ => unreachable!(),
    };
    let out_path = parse_flag(args, "--out").unwrap_or_else(|| out_default.to_string());
    println!("{}", run::header(&spec).unwrap_or_else(|e| fail(&e)));
    let executed = run::execute(&spec).unwrap_or_else(|e| fail(&e));
    println!("{}", executed.text);
    let json = executed
        .raw_json
        .as_deref()
        .expect("bench drivers emit JSON");
    std::fs::write(&out_path, json)
        .unwrap_or_else(|e| fail(&format!("cannot write {out_path}: {e}")));
    println!("wrote {out_path}");
    if workload == Workload::Serve && !executed.passed() {
        std::process::exit(1);
    }
}

/// The default scenarios directory: `crates/bench/scenarios/` in this
/// checkout (compiled in, like the golden-test paths).
fn default_scenarios_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

/// Enumerates and runs the scenario registry.
fn run_matrix_cmd(args: &[String]) {
    let dir = parse_flag(args, "--scenarios")
        .map(PathBuf::from)
        .unwrap_or_else(default_scenarios_dir);
    let registry = Registry::load(&dir).unwrap_or_else(|e| fail(&format!("matrix: {e}")));
    let only: Vec<String> = parse_flag(args, "--only")
        .map(|list| {
            list.split(',')
                .map(|name| name.trim().to_string())
                .filter(|name| !name.is_empty())
                .collect()
        })
        .unwrap_or_default();
    let tag = parse_flag(args, "--tag");
    let selected = registry
        .select(&only, tag.as_deref())
        .unwrap_or_else(|e| fail(&format!("matrix: {e}")));

    if args.iter().any(|a| a == "--dry-run") {
        print!("{}", matrix::format_listing(&selected));
        return;
    }

    let out_path = parse_flag(args, "--out").unwrap_or_else(|| "BENCH_matrix.json".to_string());
    println!("# experiment: matrix  {} scenario(s)\n", selected.len());
    let start = std::time::Instant::now();
    let report = matrix::run_matrix(&selected, &mut |line| println!("{line}"));
    println!();
    print!("{}", report.format());
    println!("# total wall-clock: {:.1}s", start.elapsed().as_secs_f64());
    std::fs::write(&out_path, report.to_json())
        .unwrap_or_else(|e| fail(&format!("cannot write {out_path}: {e}")));
    println!("wrote {out_path}");
    if !report.passed() {
        std::process::exit(1);
    }
}

/// Generates a seeded benchmark graph and writes it as a text edge list
/// (and optionally a `.ugsnap` snapshot).  `--gen gnm` (the default) is
/// the uniform G(n, m) of the 50k benches; `--gen ba` is the power-law
/// Barabási–Albert generator of the million-edge baseline, which reaches
/// 1M+ edges from `--edges 1000000` (or `--vertices`/`--attach`).
fn run_gen(args: &[String]) {
    let generator = parse_flag(args, "--gen").unwrap_or_else(|| "gnm".to_string());
    let seed: u64 = parse_num_flag(args, "--seed").unwrap_or(42);
    let Some(out) = parse_flag(args, "--out") else {
        fail("gen requires --out PATH");
    };
    let graph = match generator.as_str() {
        "gnm" => {
            let edges: usize = parse_num_flag(args, "--edges").unwrap_or(50_000);
            let vertices: usize =
                parse_num_flag(args, "--vertices").unwrap_or_else(|| cli::derive_vertices(edges));
            parbench::generate_graph(vertices, edges, seed)
        }
        "ba" => {
            let attach: usize = parse_num_flag(args, "--attach").unwrap_or(5);
            if attach == 0 {
                fail("gen: --attach must be at least 1");
            }
            // --vertices wins; otherwise derive the vertex count that
            // reaches the requested edge count (clique on attach+1 seed
            // vertices plus `attach` edges per later vertex).
            let vertices: usize = match parse_num_flag(args, "--vertices") {
                Some(n) => n,
                None => {
                    let edges: usize = parse_num_flag(args, "--edges").unwrap_or(1_000_000);
                    let clique = attach * (attach + 1) / 2;
                    edges.saturating_sub(clique).div_ceil(attach) + attach + 1
                }
            };
            let config = million::MillionBenchConfig {
                vertices,
                attach,
                seed,
                ..million::MillionBenchConfig::default()
            };
            million::generate_million_graph(&config)
        }
        other => fail(&format!(
            "gen: unknown --gen '{other}' (expected gnm or ba)"
        )),
    };
    ugraph::io::write_edge_list_file(&graph, &out)
        .unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
    println!(
        "wrote {out}: {} vertices, {} edges ({generator}, seed {seed})",
        graph.num_vertices(),
        graph.num_edges()
    );
    if let Some(snap) = parse_flag(args, "--snapshot") {
        ugraph::io::write_snapshot_file(&graph, &snap)
            .unwrap_or_else(|e| fail(&format!("cannot write {snap}: {e}")));
        println!("wrote {snap} (ugsnap v{})", ugraph::io::SNAPSHOT_VERSION);
    }
}

/// Boots the resident query service — or, with `--oneshot`, runs the
/// scripted self-test (through the registry dispatch, like the matrix)
/// and writes the `bench-serve/v2` report (the CI `serve-smoke`
/// surface).
fn run_serve(args: &[String]) {
    let spec = bench_spec(Workload::Serve, args);
    if args.iter().any(|a| a == "--oneshot") {
        run_bench_arm(Workload::Serve, args);
        return;
    }

    // Resident mode: load once (through the snapshot cache, like the
    // generic experiments), bind, and serve until a client asks for
    // shutdown.
    let config = run::serve_config(&spec).unwrap_or_else(|e| fail(&e));
    let graph = match &config.input {
        Some(input) => input
            .load_cached()
            .unwrap_or_else(|e| fail(&format!("cannot load {}: {e}", input.path.display()))),
        None => parbench::generate_graph(config.vertices, config.edges, config.seed),
    };
    let port: u16 = parse_num_flag(args, "--port").unwrap_or(0);
    let parallelism = match config.threads {
        Some(t) => ugraph::par::Parallelism::fixed(t),
        None => ugraph::par::Parallelism::Auto,
    };
    let core = nd_server::ServerCore::new(
        graph,
        nd_server::ServerConfig {
            cache_capacity: config.cache_capacity,
            parallelism,
            ..nd_server::ServerConfig::default()
        },
    );
    let server = nd_server::Server::bind(format!("127.0.0.1:{port}"), core)
        .unwrap_or_else(|e| fail(&format!("cannot bind 127.0.0.1:{port}: {e}")));
    match server.local_addr() {
        Ok(addr) => println!("serving on {addr} (send a 'shutdown' call to stop)"),
        Err(e) => fail(&format!("cannot read the bound address: {e}")),
    }
    let stats = server.run();
    println!("server drained; final counters:");
    for (name, value) in stats.fields() {
        println!("  {name}: {value}");
    }
}

/// One scripted call against a running server: connect, send, print the
/// JSON result (or the typed error) and exit accordingly.
fn run_serve_client(args: &[String]) {
    let Some(addr) = parse_flag(args, "--addr") else {
        fail("serve-client requires --addr HOST:PORT");
    };
    let method = parse_flag(args, "--call").unwrap_or_else(|| "ping".to_string());
    let params = match parse_flag(args, "--params") {
        Some(text) => {
            Json::parse(&text).unwrap_or_else(|e| fail(&format!("invalid --params: {e}")))
        }
        None => Json::Null,
    };
    let deadline_ms = parse_num_flag::<u64>(args, "--deadline-ms");
    let mut client = nd_server::Client::connect(addr.as_str())
        .unwrap_or_else(|e| fail(&format!("cannot connect to {addr}: {e}")));
    match client.call_with_deadline(&method, params, deadline_ms) {
        Ok(result) => println!("{}", result.to_json_string()),
        Err(e) => fail(&e.to_string()),
    }
}
