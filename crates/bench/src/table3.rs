//! Table 3 — cohesiveness of the ℓ-(k,θ)-nucleus versus the probabilistic
//! (k,γ)-truss and (k,η)-core baselines, measured by vertex/edge counts,
//! maximum score, probabilistic density (PD) and probabilistic clustering
//! coefficient (PCC), at θ = γ = η ∈ {0.1, 0.3}.
//!
//! As in the paper, the statistics are reported for the *maximum* score of
//! each decomposition (k_max), averaged over its connected components.

use nd_datasets::PaperDataset;
use nucleus::{LocalConfig, LocalNucleusDecomposition};
use probdecomp::{
    eta_core_subgraphs, gamma_truss_subgraphs, EtaCoreDecomposition, GammaTrussDecomposition,
};
use ugraph::metrics::{probabilistic_clustering_coefficient, probabilistic_density};
use ugraph::{EdgeSubgraph, UncertainGraph};

use crate::runner::{format_table, ExperimentContext};

/// Thresholds reported by the table.
pub const THETAS: [f64; 2] = [0.1, 0.3];

/// Average statistics of one decomposition's maximum-score components.
#[derive(Debug, Clone, Default)]
pub struct CohesivenessStats {
    /// Average number of vertices over components.
    pub avg_vertices: f64,
    /// Average number of edges over components.
    pub avg_edges: f64,
    /// Maximum score (k_max) of the decomposition.
    pub k_max: u32,
    /// Average probabilistic density.
    pub pd: f64,
    /// Average probabilistic clustering coefficient.
    pub pcc: f64,
}

fn average_stats(subgraphs: &[&UncertainGraph]) -> (f64, f64, f64, f64) {
    if subgraphs.is_empty() {
        return (0.0, 0.0, 0.0, 0.0);
    }
    let n = subgraphs.len() as f64;
    let v = subgraphs
        .iter()
        .map(|g| g.num_vertices() as f64)
        .sum::<f64>()
        / n;
    let e = subgraphs.iter().map(|g| g.num_edges() as f64).sum::<f64>() / n;
    let pd = subgraphs
        .iter()
        .map(|g| probabilistic_density(g))
        .sum::<f64>()
        / n;
    let pcc = subgraphs
        .iter()
        .map(|g| probabilistic_clustering_coefficient(g))
        .sum::<f64>()
        / n;
    (v, e, pd, pcc)
}

fn stats_of_edge_subgraphs(subs: &[EdgeSubgraph], k_max: u32) -> CohesivenessStats {
    let graphs: Vec<&UncertainGraph> = subs.iter().map(|s| s.graph()).collect();
    let (avg_vertices, avg_edges, pd, pcc) = average_stats(&graphs);
    CohesivenessStats {
        avg_vertices,
        avg_edges,
        k_max,
        pd,
        pcc,
    }
}

/// One row of Table 3: a dataset, a threshold, and the three decompositions.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Dataset name.
    pub dataset: String,
    /// Threshold θ = γ = η.
    pub theta: f64,
    /// ℓ-(k,θ)-nucleus statistics.
    pub nucleus: CohesivenessStats,
    /// Local (k,γ)-truss statistics.
    pub truss: CohesivenessStats,
    /// (k,η)-core statistics.
    pub core: CohesivenessStats,
}

/// The full Table 3.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// One row per dataset × θ.
    pub rows: Vec<Table3Row>,
}

/// Runs the comparison over the given datasets (the paper uses dblp,
/// pokec and biomine).
pub fn run(ctx: &ExperimentContext, datasets: &[PaperDataset]) -> Table3 {
    let mut rows = Vec::new();
    for &ds in datasets {
        let graph = ctx.dataset(ds);
        for &theta in &THETAS {
            // Nucleus.
            let local =
                LocalNucleusDecomposition::compute(&graph, &LocalConfig::approximate(theta))
                    .expect("valid config");
            let kn = local.max_score();
            let nucleus_subs: Vec<EdgeSubgraph> = local
                .k_nuclei(&graph, kn.max(1))
                .into_iter()
                .map(|n| n.subgraph)
                .collect();
            let nucleus = stats_of_edge_subgraphs(&nucleus_subs, kn);

            // Truss.
            let truss_decomp =
                GammaTrussDecomposition::try_compute(&graph, theta).expect("valid theta");
            let kt = truss_decomp.max_truss();
            let truss_subs = gamma_truss_subgraphs(&graph, kt.max(1), theta).expect("valid theta");
            let truss = stats_of_edge_subgraphs(&truss_subs, kt);

            // Core.
            let core_decomp =
                EtaCoreDecomposition::try_compute(&graph, theta).expect("valid theta");
            let kc = core_decomp.max_core();
            let core_subs = eta_core_subgraphs(&graph, kc.max(1), theta).expect("valid theta");
            let core = stats_of_edge_subgraphs(&core_subs, kc);

            rows.push(Table3Row {
                dataset: ctx.dataset_name(ds),
                theta,
                nucleus,
                truss,
                core,
            });
        }
    }
    Table3 { rows }
}

impl Table3 {
    /// Formats the table in the layout of the paper (N/T/C columns).
    pub fn format(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.to_string(),
                    format!("{:.1}", r.theta),
                    format!(
                        "{:.0}/{:.0}/{:.0}",
                        r.nucleus.avg_vertices, r.truss.avg_vertices, r.core.avg_vertices
                    ),
                    format!(
                        "{:.0}/{:.0}/{:.0}",
                        r.nucleus.avg_edges, r.truss.avg_edges, r.core.avg_edges
                    ),
                    format!("{}/{}/{}", r.nucleus.k_max, r.truss.k_max, r.core.k_max),
                    format!("{:.3}/{:.3}/{:.3}", r.nucleus.pd, r.truss.pd, r.core.pd),
                    format!("{:.3}/{:.3}/{:.3}", r.nucleus.pcc, r.truss.pcc, r.core.pcc),
                ]
            })
            .collect();
        format!(
            "Table 3: cohesiveness of nucleus (N) vs truss (T) vs core (C)\n{}",
            format_table(
                &[
                    "Graph",
                    "theta",
                    "|V| N/T/C",
                    "|E| N/T/C",
                    "kmax N/T/C",
                    "PD N/T/C",
                    "PCC N/T/C"
                ],
                &rows
            )
        )
    }

    /// The paper's headline claim: the nucleus achieves PD and PCC at
    /// least as high as truss and core.  Returns the rows violating it
    /// (with a small tolerance).
    pub fn check_shape(&self) -> Vec<String> {
        let mut violations = Vec::new();
        for r in &self.rows {
            if r.nucleus.pd + 0.05 < r.truss.pd || r.nucleus.pd + 0.05 < r.core.pd {
                violations.push(format!(
                    "{} theta={}: nucleus PD {:.3} below truss {:.3} / core {:.3}",
                    r.dataset, r.theta, r.nucleus.pd, r.truss.pd, r.core.pd
                ));
            }
            if r.nucleus.pcc + 0.05 < r.truss.pcc || r.nucleus.pcc + 0.05 < r.core.pcc {
                violations.push(format!(
                    "{} theta={}: nucleus PCC {:.3} below truss {:.3} / core {:.3}",
                    r.dataset, r.theta, r.nucleus.pcc, r.truss.pcc, r.core.pcc
                ));
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_datasets::Scale;

    #[test]
    fn nucleus_is_densest_on_a_tiny_dataset() {
        let ctx = ExperimentContext::new(Scale::Tiny, 7);
        let t = run(&ctx, &[PaperDataset::Dblp]);
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            assert!(row.nucleus.k_max >= 1, "nucleus should find dense groups");
            assert!(row.nucleus.pd > 0.0);
        }
        let violations = t.check_shape();
        assert!(violations.is_empty(), "{violations:?}");
        assert!(t.format().contains("Table 3"));
    }
}
