//! # nd-bench — experiment harness for the nucleus-decomposition paper
//!
//! Every table and figure of the paper's evaluation (Section 7) has a
//! module here that regenerates it on the synthetic datasets of
//! [`nd_datasets`]:
//!
//! | module | paper artifact | what it reports |
//! |--------|----------------|-----------------|
//! | [`table1`] | Table 1 | dataset statistics |
//! | [`fig4`] | Figure 4 | running time of local decomposition, DP vs AP, per θ |
//! | [`fig5`] | Figure 5 | running time of fully-global (FG) vs weakly-global (WG) |
//! | [`table2`] | Table 2 | accuracy of AP scores vs DP scores |
//! | [`fig6`] | Figure 6 | relative error of each approximation under its conditions |
//! | [`table3`] | Table 3 | cohesiveness of nucleus vs truss vs core (PD, PCC) |
//! | [`fig7`] | Figure 7 | PD/PCC/edges/#nuclei of ℓ-(k,θ)-nuclei as k varies |
//! | [`fig8`] | Figure 8 | PD/PCC of g- vs w- vs ℓ-nuclei |
//! | [`ablation`] | (extra) | Monte-Carlo sample count vs estimation error; per-method scoring cost |
//! | [`parbench`] | (extra) | parallel-substrate speedups + peeling-engine perf counters, emitted as machine-readable `BENCH_parallel.json` |
//! | [`thetasweep`] | (extra) | θ-sweep amortization: one support build vs per-θ rebuilds, `support_builds` + per-θ counters as `bench-parallel/v4` JSON |
//! | [`compare`] | (extra) | `bench-compare`: diff two bench JSONs, gate CI on deterministic counters |
//! | [`million`] | (extra) | million-edge memory-scaling baseline: snapshot mmap vs owned reload, streaming index, truss sweep, as `bench-million/v1` JSON |
//! | [`serve`] | (extra) | `nd-server` smoke: scripted TCP session vs direct library calls, counters as `bench-serve/v2` JSON |
//! | [`updates`] | (extra) | incremental edge-update maintenance: repair vs rebuild work counters as `bench-updates/v1` JSON |
//! | [`registry`] | (extra) | declarative scenario registry: TOML-subset specs + builtins behind `experiments matrix`, emitted as `bench-matrix/v1` JSON |
//! | [`cli`] | (extra) | shared flag parsing (`--input/--format/--prob-model`, θ-grids, thread lists) for the `experiments` binary |
//!
//! Run them through the `experiments` binary:
//!
//! ```text
//! cargo run -p nd-bench --release --bin experiments -- all --scale small
//! cargo run -p nd-bench --release --bin experiments -- fig4 --scale tiny
//! ```

pub mod ablation;
pub mod cli;
pub mod compare;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod million;
pub mod parbench;
pub mod registry;
pub mod runner;
pub mod serve;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod thetasweep;
pub mod updates;

/// The workspace's JSON reader/writer now lives with the wire protocol
/// in `nd-server`; this re-export keeps `nd_bench::json` paths working.
pub use nd_server::json;

pub use runner::{run_with_deadline, ExperimentContext, Timing};
