//! Incremental-update benchmark (`experiments updates`): repair vs
//! rebuild after a seeded edge-update batch, as machine-readable
//! `bench-updates/v1` JSON.
//!
//! The tentpole claim of the incremental-maintenance path is that
//! [`DecompSweep::apply_updates`] answers an edge-update batch with a
//! bounded re-peel — fresh score evaluations for the affected set only,
//! a region-local peel — while staying bit-identical to a from-scratch
//! sweep on the updated graph.  This module makes both halves of the
//! claim CI-gateable:
//!
//! * the repaired sweep's scores and initial scores are asserted equal
//!   to a fresh [`DecompSweep::compute`] on the updated graph at every
//!   grid point (the benchmark doubles as a differential check at real
//!   scale, like the thetasweep bench), and
//! * the deterministic work counters are emitted side by side:
//!   `repair_dp_calls` (score evaluations the repair spent, initial +
//!   peel, summed over the grid) vs `rebuild_dp_calls` (what the fresh
//!   sweep spent: `grid · elements` initial evaluations plus its peel
//!   recomputations), plus `dp_calls_excess = max(0, repair − rebuild)`.
//!   Every committed baseline has excess 0, and `bench-compare` gates
//!   the field Exact at tolerance 0 — so "repair never does more work
//!   than rebuild" is enforced on every CI run, and `repair_dp_calls`
//!   itself must never increase.
//!
//! ```json
//! {
//!   "schema": "bench-updates/v1",
//!   "rank": "truss",
//!   "source": { "kind": "generated", ... },
//!   "vertices": 2000, "edges": 50000, "seed": 42,
//!   "thetas": [ 0.02, 0.05, 0.1, 0.25, 0.5 ],
//!   "batch": { "inserts": 64, "deletes": 64, "reweights": 64 },
//!   "edges_after": 50000,
//!   "repair": { "affected_elements": 931, "region_elements": 1210,
//!               "repaired_points": 5, "recomputed_points": 0,
//!               "repair_dp_calls": 5063, "rebuild_dp_calls": 251172,
//!               "dp_calls_excess": 0 }
//! }
//! ```
//!
//! Wall-clock timings are deliberately absent, like the serve report:
//! every field diffs at tolerance 0.

use std::collections::HashSet;

use nd_datasets::ExternalDataset;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use ugraph::{EdgeUpdate, UncertainGraph, VertexId};

use nucleus::{DecompSweep, Rank, SweepConfig, UpdateReport};

use crate::parbench::{generate_graph, ingest, json_source_object, IngestError, IngestTimings};
use crate::thetasweep::DEFAULT_GRID;

/// Configuration of the incremental-update benchmark.
#[derive(Debug, Clone)]
pub struct UpdateBenchConfig {
    /// The (r,s) rank to maintain: core, truss or nucleus.
    pub rank: Rank,
    /// Number of vertices of the generated G(n, m) graph.
    pub vertices: usize,
    /// Number of edges of the generated G(n, m) graph.
    pub edges: usize,
    /// RNG seed for structure and probability generation; the batch is
    /// drawn from an independent stream seeded `seed + 1`.
    pub seed: u64,
    /// The threshold grid the sweep maintains across the update.
    pub thetas: Vec<f64>,
    /// Target number of updates *per operation kind* (clamped on small
    /// or saturated graphs; the report records the realized sizes).
    pub batch: usize,
    /// Ingested input overriding the generator (same semantics as
    /// `parbench --input`).
    pub input: Option<ExternalDataset>,
}

impl Default for UpdateBenchConfig {
    /// Same graph shape as the parbench/thetasweep/serve defaults
    /// (average degree 50), so every report describes the same
    /// workload.  The truss rank is the default: its elements are the
    /// edges the batch touches directly, the densest interplay between
    /// batch and damage region.
    fn default() -> Self {
        UpdateBenchConfig {
            rank: Rank::Truss,
            vertices: 2_000,
            edges: 50_000,
            seed: 42,
            thetas: DEFAULT_GRID.to_vec(),
            batch: 64,
            input: None,
        }
    }
}

/// Full report of an update-benchmark run.
#[derive(Debug, Clone)]
pub struct UpdateBenchReport {
    /// The configuration the report was produced with.
    pub config: UpdateBenchConfig,
    /// Actual vertex count of the measured graph.
    pub actual_vertices: usize,
    /// Actual edge count before the batch.
    pub actual_edges: usize,
    /// Edge count after the batch.
    pub edges_after: usize,
    /// Ingestion timings when the graph came from `--input`.
    pub ingest: Option<IngestTimings>,
    /// Realized insert count of the batch.
    pub inserts: usize,
    /// Realized delete count of the batch.
    pub deletes: usize,
    /// Realized reweight count of the batch.
    pub reweights: usize,
    /// The repair's deterministic counters.
    pub report: UpdateReport,
    /// What the verifying rebuild spent: `grid · elements` initial
    /// score evaluations plus its peeling recomputations.
    pub rebuild_dp_calls: usize,
}

impl UpdateBenchReport {
    /// Score evaluations the repair spent beyond a full rebuild — 0
    /// whenever the bounded re-peel actually pays off, and the Exact
    /// `bench-compare` gate keeping it that way.
    pub fn dp_calls_excess(&self) -> usize {
        self.report
            .repair_dp_calls
            .saturating_sub(self.rebuild_dp_calls)
    }

    /// Serializes the report to the `bench-updates/v1` JSON schema.
    pub fn to_json(&self) -> String {
        let thetas: Vec<String> = self
            .config
            .thetas
            .iter()
            .map(|t| format!("{t:.6}"))
            .collect();
        format!(
            "{{\n  \"schema\": \"bench-updates/v1\",\n  \"rank\": \"{}\",\n  \
             \"source\": {},\n  \
             \"vertices\": {},\n  \"edges\": {},\n  \"seed\": {},\n  \
             \"thetas\": [ {} ],\n  \
             \"batch\": {{ \"inserts\": {}, \"deletes\": {}, \"reweights\": {} }},\n  \
             \"edges_after\": {},\n  \
             \"repair\": {{ \"affected_elements\": {}, \"region_elements\": {},\n    \
             \"repaired_points\": {}, \"recomputed_points\": {},\n    \
             \"repair_dp_calls\": {}, \"rebuild_dp_calls\": {},\n    \
             \"dp_calls_excess\": {} }}\n}}\n",
            self.config.rank,
            json_source_object(
                self.config.input.as_ref(),
                self.ingest.as_ref(),
                self.config.vertices,
                self.config.edges,
                self.config.seed,
            ),
            self.actual_vertices,
            self.actual_edges,
            self.config.seed,
            thetas.join(", "),
            self.inserts,
            self.deletes,
            self.reweights,
            self.edges_after,
            self.report.affected_elements,
            self.report.region_elements,
            self.report.repaired_points,
            self.report.recomputed_points,
            self.report.repair_dp_calls,
            self.rebuild_dp_calls,
            self.dp_calls_excess(),
        )
    }

    /// Human-readable summary of the same run.
    pub fn format(&self) -> String {
        format!(
            "{} update bench — {} vertices, {} edges -> {} after batch \
             ({} inserts, {} deletes, {} reweights), grid {:?}\n\
             damage: {} affected elements, {} re-peeled (region)\n\
             work: repair {} dp_calls vs rebuild {} ({}x saved, excess {})\n\
             bit-identity vs fresh sweep on the updated graph: verified at every grid point",
            self.config.rank,
            self.actual_vertices,
            self.actual_edges,
            self.edges_after,
            self.inserts,
            self.deletes,
            self.reweights,
            self.config.thetas,
            self.report.affected_elements,
            self.report.region_elements,
            self.report.repair_dp_calls,
            self.rebuild_dp_calls,
            self.rebuild_dp_calls / self.report.repair_dp_calls.max(1),
            self.dp_calls_excess(),
        )
    }
}

/// Draws a valid-by-construction batch against `graph` from a dedicated
/// RNG stream: `batch` deletes and `batch` reweights over distinct
/// existing edges, `batch` inserts of fresh non-edges (clamped when the
/// graph is small or near-complete).  Every touched pair is distinct, so
/// the batch is valid in any order and its net effect is exactly its
/// face value.
pub fn seeded_batch(graph: &UncertainGraph, batch: usize, seed: u64) -> Vec<EdgeUpdate> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = graph.num_vertices();
    let edges = graph.edges();
    let existing: HashSet<(VertexId, VertexId)> = edges.iter().map(|e| (e.u, e.v)).collect();

    // Deletes and reweights: a seeded sample of distinct edge indices,
    // first half deleted, second half reweighted.
    let per_kind = batch.min(edges.len() / 4);
    let mut picked = HashSet::new();
    let mut updates = Vec::new();
    while picked.len() < 2 * per_kind {
        let i = rng.gen_range(0..edges.len());
        if !picked.insert(i) {
            continue;
        }
        let e = &edges[i];
        if picked.len() <= per_kind {
            updates.push(EdgeUpdate::Delete { u: e.u, v: e.v });
        } else {
            // Exact binary halving: survives the f64 wire round-trip and
            // stays within (0, 1].
            updates.push(EdgeUpdate::Reweight {
                u: e.u,
                v: e.v,
                p: e.p * 0.5,
            });
        }
    }

    // Inserts: rejection-sample fresh non-edges.  The attempt budget
    // only binds on near-complete graphs, where fewer inserts are fine.
    let mut fresh = HashSet::new();
    let mut attempts = 0usize;
    while fresh.len() < per_kind && attempts < 64 * batch.max(1) {
        attempts += 1;
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        let (a, b) = (u.min(v), u.max(v));
        if a == b || existing.contains(&(a, b)) || !fresh.insert((a, b)) {
            continue;
        }
        updates.push(EdgeUpdate::Insert {
            u: a,
            v: b,
            p: rng.gen_range(0.2..=0.9),
        });
    }
    updates
}

/// Runs the benchmark: build the sweep, apply the seeded batch through
/// the incremental path, rebuild from scratch on the updated graph,
/// assert bit-identity at every grid point, and report both sides' work
/// counters.
///
/// Panics if the repaired sweep and the fresh rebuild disagree on a
/// single score or initial score — the benchmark doubles as a
/// CI-enforced differential check at real scale.
pub fn run(config: &UpdateBenchConfig) -> Result<UpdateBenchReport, IngestError> {
    let (graph, ingest_timings) = match &config.input {
        Some(input) => ingest(input)?,
        None => (
            generate_graph(config.vertices, config.edges, config.seed),
            None,
        ),
    };
    let sweep_config = SweepConfig::exact(config.thetas.clone()).with_rank(config.rank);
    let mut sweep = DecompSweep::compute(&graph, &sweep_config).expect("valid sweep config");

    let batch = seeded_batch(&graph, config.batch, config.seed + 1);
    let (inserts, deletes, reweights) = batch.iter().fold((0, 0, 0), |(i, d, r), u| match u {
        EdgeUpdate::Insert { .. } => (i + 1, d, r),
        EdgeUpdate::Delete { .. } => (i, d + 1, r),
        EdgeUpdate::Reweight { .. } => (i, d, r + 1),
    });
    let outcome = sweep
        .apply_updates(&graph, &batch)
        .expect("seeded batch is valid by construction");

    // The verifying rebuild: one fresh sweep on the updated graph.  Its
    // total score evaluations are `grid · elements` initial passes plus
    // the peel's recomputations.
    let rebuilt = DecompSweep::compute(&outcome.graph, &sweep_config).expect("valid sweep config");
    for gi in 0..config.thetas.len() {
        assert_eq!(
            sweep.scores_at_index(gi),
            rebuilt.scores_at_index(gi),
            "repaired {} sweep diverged from the rebuild at threshold {}",
            config.rank,
            config.thetas[gi]
        );
        assert_eq!(
            sweep.initial_scores_at_index(gi),
            rebuilt.initial_scores_at_index(gi),
            "repaired {} initial scores diverged at threshold {}",
            config.rank,
            config.thetas[gi]
        );
    }
    let rebuild_dp_calls = config.thetas.len() * rebuilt.num_elements() + rebuilt.total_dp_calls();

    Ok(UpdateBenchReport {
        config: config.clone(),
        actual_vertices: graph.num_vertices(),
        actual_edges: graph.num_edges(),
        edges_after: outcome.graph.num_edges(),
        ingest: ingest_timings,
        inserts,
        deletes,
        reweights,
        report: outcome.report,
        rebuild_dp_calls,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn tiny_config() -> UpdateBenchConfig {
        UpdateBenchConfig {
            rank: Rank::Truss,
            vertices: 60,
            edges: 400,
            seed: 7,
            thetas: vec![0.05, 0.1, 0.3],
            batch: 8,
            input: None,
        }
    }

    #[test]
    fn seeded_batch_is_valid_and_deterministic() {
        let graph = generate_graph(60, 400, 7);
        let a = seeded_batch(&graph, 8, 8);
        let b = seeded_batch(&graph, 8, 8);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.endpoints(), y.endpoints());
            assert_eq!(x.op(), y.op());
        }
        assert_eq!(a.len(), 24, "8 deletes + 8 reweights + 8 inserts");
        // Valid against the graph: the net-delta application accepts it.
        ugraph::apply_edge_updates(&graph, &a).expect("batch is valid");
        // Every touched pair is distinct.
        let pairs: HashSet<_> = a.iter().map(EdgeUpdate::endpoints).collect();
        assert_eq!(pairs.len(), a.len());
    }

    #[test]
    fn report_is_bit_identical_and_repair_beats_rebuild() {
        let report = run(&tiny_config()).unwrap();
        assert_eq!(report.inserts, 8);
        assert_eq!(report.deletes, 8);
        assert_eq!(report.reweights, 8);
        assert_eq!(report.edges_after, 400);
        assert_eq!(report.report.repaired_points, 3);
        assert_eq!(report.report.recomputed_points, 0);
        // The acceptance inequality itself, at test scale.
        assert!(
            report.report.repair_dp_calls <= report.rebuild_dp_calls,
            "repair {} > rebuild {}",
            report.report.repair_dp_calls,
            report.rebuild_dp_calls
        );
        assert_eq!(report.dp_calls_excess(), 0);
        assert!(report.format().contains("bit-identity"));
    }

    #[test]
    fn json_has_v1_schema_and_gated_fields() {
        let report = run(&tiny_config()).unwrap();
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"bench-updates/v1\""));
        assert!(json.contains("\"rank\": \"truss\""));
        assert!(json.contains("\"kind\": \"generated\""));
        let doc = Json::parse(&json).expect("report JSON parses");
        assert_eq!(
            doc.path(&["batch", "deletes"]).and_then(Json::as_f64),
            Some(8.0)
        );
        assert_eq!(
            doc.path(&["repair", "dp_calls_excess"])
                .and_then(Json::as_f64),
            Some(0.0)
        );
        assert_eq!(
            doc.path(&["repair", "repair_dp_calls"])
                .and_then(Json::as_f64),
            Some(report.report.repair_dp_calls as f64)
        );
        assert_eq!(
            doc.path(&["repair", "rebuild_dp_calls"])
                .and_then(Json::as_f64),
            Some(report.rebuild_dp_calls as f64)
        );
        // The emitted report self-compares clean under the gate.
        let diff = crate::compare::compare(&doc, &doc, 0.0).unwrap();
        assert!(diff.regressions().is_empty(), "{}", diff.format());
    }

    #[test]
    fn counters_are_deterministic_across_runs_and_ranks() {
        for rank in [Rank::Core, Rank::Truss, Rank::Nucleus] {
            let mut config = tiny_config();
            config.rank = rank;
            let a = run(&config).unwrap();
            let b = run(&config).unwrap();
            assert_eq!(a.report, b.report, "{rank}");
            assert_eq!(a.to_json(), b.to_json(), "{rank}");
            assert!(a.report.repair_dp_calls <= a.rebuild_dp_calls, "{rank}");
        }
    }
}
