//! Table 1 — dataset statistics.

use nd_datasets::{stats_row, PaperDataset, Table1Row};

use crate::runner::{format_table, ExperimentContext};

/// The full Table 1 over the requested datasets.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// One row per dataset, in the paper's order.
    pub rows: Vec<Table1Row>,
}

/// Runs the experiment: materialize every dataset (synthetic or ingested)
/// and compute its statistics.
pub fn run(ctx: &ExperimentContext, datasets: &[PaperDataset]) -> Table1 {
    let rows = datasets
        .iter()
        .map(|&ds| {
            let graph = ctx.dataset(ds);
            stats_row(ctx.dataset_name(ds), &graph)
        })
        .collect();
    Table1 { rows }
}

impl Table1 {
    /// Formats the table in the layout of the paper.
    pub fn format(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.name.to_string(),
                    r.num_vertices.to_string(),
                    r.num_edges.to_string(),
                    r.max_degree.to_string(),
                    format!("{:.2}", r.average_probability),
                    r.num_triangles.to_string(),
                ]
            })
            .collect();
        format!(
            "Table 1: dataset statistics (synthetic stand-ins)\n{}",
            format_table(&["Graph", "|V|", "|E|", "dmax", "p_avg", "|tri|"], &rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_datasets::Scale;

    #[test]
    fn produces_six_rows_in_paper_order() {
        let ctx = ExperimentContext::new(Scale::Tiny, 1);
        let t = run(&ctx, &PaperDataset::all());
        assert_eq!(t.rows.len(), 6);
        assert_eq!(t.rows[0].name, "krogan");
        assert_eq!(t.rows[5].name, "ljournal-2008");
        let text = t.format();
        assert!(text.contains("Table 1"));
        assert!(text.contains("biomine"));
    }
}
