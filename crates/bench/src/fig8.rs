//! Figure 8 — probabilistic density (PD) and probabilistic clustering
//! coefficient (PCC) of the g-(k,θ)-, w-(k,θ)- and ℓ-(k,θ)-nuclei at
//! θ = 0.001, averaged over all values of `k`.

use nd_datasets::PaperDataset;
use nucleus::{
    global::global_nuclei_with_local, weakly_global::weakly_global_nuclei_with_local, GlobalConfig,
    LocalConfig, LocalNucleusDecomposition, SamplingConfig,
};
use ugraph::metrics::{probabilistic_clustering_coefficient, probabilistic_density};
use ugraph::UncertainGraph;

use crate::runner::{format_table, ExperimentContext};

/// The threshold fixed by the figure.
pub const THETA: f64 = 0.001;

/// PD/PCC of one decomposition mode on one dataset, averaged over k.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Dataset name.
    pub dataset: String,
    /// Average PD of the g-, w- and ℓ-nuclei respectively.
    pub pd: [f64; 3],
    /// Average PCC of the g-, w- and ℓ-nuclei respectively.
    pub pcc: [f64; 3],
}

/// The full Figure 8.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// One row per dataset.
    pub rows: Vec<Fig8Row>,
}

fn average_metrics(graphs: &[&UncertainGraph]) -> (f64, f64) {
    if graphs.is_empty() {
        return (0.0, 0.0);
    }
    let n = graphs.len() as f64;
    let pd = graphs.iter().map(|g| probabilistic_density(g)).sum::<f64>() / n;
    let pcc = graphs
        .iter()
        .map(|g| probabilistic_clustering_coefficient(g))
        .sum::<f64>()
        / n;
    (pd, pcc)
}

/// Runs the comparison over the given datasets (krogan, flickr, dblp in
/// the paper), averaging over `k = 1..=k_cap` where `k_cap` bounds the
/// sweep for runtime control.
pub fn run(
    ctx: &ExperimentContext,
    datasets: &[PaperDataset],
    k_cap: u32,
    num_samples: usize,
) -> Fig8 {
    let mut rows = Vec::new();
    for &ds in datasets {
        let graph = ctx.dataset(ds);
        let local = LocalNucleusDecomposition::compute(&graph, &LocalConfig::approximate(THETA))
            .expect("valid config");
        let config = GlobalConfig::new(THETA).with_sampling(
            SamplingConfig::default()
                .with_num_samples(num_samples)
                .with_seed(ctx.seed),
        );
        let k_max = local.max_score().min(k_cap);

        let mut g_graphs = Vec::new();
        let mut w_graphs = Vec::new();
        let mut l_graphs = Vec::new();
        for k in 1..=k_max {
            for n in global_nuclei_with_local(&graph, k, &config, &local).expect("valid config") {
                g_graphs.push(n.subgraph.into_graph());
            }
            for n in
                weakly_global_nuclei_with_local(&graph, k, &config, &local).expect("valid config")
            {
                w_graphs.push(n.subgraph.into_graph());
            }
            for n in local.k_nuclei(&graph, k) {
                l_graphs.push(n.subgraph.into_graph());
            }
        }
        let (g_pd, g_pcc) = average_metrics(&g_graphs.iter().collect::<Vec<_>>());
        let (w_pd, w_pcc) = average_metrics(&w_graphs.iter().collect::<Vec<_>>());
        let (l_pd, l_pcc) = average_metrics(&l_graphs.iter().collect::<Vec<_>>());
        rows.push(Fig8Row {
            dataset: ctx.dataset_name(ds),
            pd: [g_pd, w_pd, l_pd],
            pcc: [g_pcc, w_pcc, l_pcc],
        });
    }
    Fig8 { rows }
}

impl Fig8 {
    /// Formats the figure as a table.
    pub fn format(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.to_string(),
                    format!("{:.3}", r.pd[0]),
                    format!("{:.3}", r.pd[1]),
                    format!("{:.3}", r.pd[2]),
                    format!("{:.3}", r.pcc[0]),
                    format!("{:.3}", r.pcc[1]),
                    format!("{:.3}", r.pcc[2]),
                ]
            })
            .collect();
        format!(
            "Figure 8: PD and PCC of g-, w- and ℓ-nuclei (theta = {THETA})\n{}",
            format_table(
                &["Graph", "PD(g)", "PD(w)", "PD(l)", "PCC(g)", "PCC(w)", "PCC(l)"],
                &rows
            )
        )
    }

    /// The paper observes g-nuclei are at least as cohesive as w-nuclei,
    /// which are at least as cohesive as ℓ-nuclei.  Returns violations
    /// (rows with empty decompositions are skipped).
    pub fn check_shape(&self) -> Vec<String> {
        let mut violations = Vec::new();
        for r in &self.rows {
            let [g, w, l] = r.pd;
            if g > 0.0 && w > 0.0 && g + 0.1 < w {
                violations.push(format!("{}: PD(g) {g:.3} below PD(w) {w:.3}", r.dataset));
            }
            if w > 0.0 && l > 0.0 && w + 0.1 < l {
                violations.push(format!("{}: PD(w) {w:.3} below PD(l) {l:.3}", r.dataset));
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_datasets::Scale;

    #[test]
    fn modes_are_ordered_by_cohesiveness_on_krogan() {
        let ctx = ExperimentContext::new(Scale::Tiny, 13);
        let fig = run(&ctx, &[PaperDataset::Krogan], 2, 40);
        assert_eq!(fig.rows.len(), 1);
        let violations = fig.check_shape();
        assert!(violations.is_empty(), "{violations:?}");
        // The local decomposition always produces nuclei on this dataset.
        assert!(fig.rows[0].pd[2] > 0.0);
        assert!(fig.format().contains("Figure 8"));
    }
}
