//! Million-edge memory-scaling baseline (`experiments million`).
//!
//! The other benchmarks measure a 50k-edge graph where everything fits
//! comfortably; this one exists to pin down how the substrate behaves at
//! the scale the paper's real datasets start at (Table 1's Flickr has
//! 2.3M edges).  It generates a seeded power-law graph of ≥1M edges
//! (Barabási–Albert preferential attachment, uniform probabilities),
//! then measures the memory-relevant paths end to end:
//!
//! * **Snapshot round trip** — write the `.ugsnap`, reload it through
//!   the owned byte-copying decoder *and* through the zero-copy
//!   [`ugraph::io::open_snapshot`] path, asserting both graphs are
//!   bit-identical to the generated one.  `mmap_speedup` is the
//!   owned-reload time over the mmap-open time.
//! * **Triangle phase scaling** — enumeration at 1 thread and at
//!   `config.threads`, with the count asserted identical.
//! * **Streaming index build** — [`TriangleIndex::try_build_streaming`]
//!   in fixed chunks of `streaming_chunk_edges`, asserted identical to
//!   the all-at-once index, so the bounded-scratch path is exercised at
//!   a scale where the bound matters.
//! * **Truss-rank sweep** — one [`DecompSweep`] over a small γ grid,
//!   recording the deterministic [`PeelStats`] per threshold.  Unlike
//!   `experiments thetasweep` there is no independent per-threshold
//!   rerun: at this scale the comparison engine would dominate the
//!   budget, and the sweep-vs-independent identity is already pinned by
//!   the 50k bench.
//!
//! The report (`bench-million/v1`) reuses the `counts` and `sweep`
//! objects of the parallel family so `bench-compare` gates the shared
//! counters with the same table, and adds a `million` object with the
//! snapshot size (Exact — a format change shows up as a byte drift),
//! the wall figures (report-only) and the process-wide
//! [`ugraph::metrics::peak_rss_bytes`] probe (bounded-factor gate).

use std::time::Duration;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ugraph::generators::{assign_probabilities, barabasi_albert_edges, ProbabilityModel};
use ugraph::io;
use ugraph::par::Parallelism;
use ugraph::triangles::enumerate_triangles_with;
use ugraph::{TriangleIndex, UncertainGraph};

use nucleus::{DecompSweep, PeelStats, Rank, SweepConfig};

use crate::parbench::json_escape;
use crate::runner::{run_with_deadline, Timing};

/// Configuration of the million-edge baseline.
#[derive(Debug, Clone)]
pub struct MillionBenchConfig {
    /// Number of vertices of the Barabási–Albert graph.
    pub vertices: usize,
    /// Edges each new vertex attaches with (the BA `m` parameter).
    pub attach: usize,
    /// RNG seed for structure and probability generation.
    pub seed: u64,
    /// Thread count of the scaled triangle run (1-thread always runs).
    pub threads: usize,
    /// Chunk size of the streaming triangle-index build, in edges.
    pub streaming_chunk_edges: usize,
    /// The γ grid of the truss-rank sweep.
    pub thetas: Vec<f64>,
    /// Wall-clock budget for the sweep phase.
    pub deadline: Duration,
}

impl Default for MillionBenchConfig {
    /// 200_005 vertices attaching 5 edges each: 15 clique edges plus
    /// 5·199_999 attachment edges — 1_000_010 edges, just past the
    /// million-edge bar the baseline exists to hold.
    fn default() -> Self {
        MillionBenchConfig {
            vertices: 200_005,
            attach: 5,
            seed: 42,
            threads: 4,
            streaming_chunk_edges: 65_536,
            thetas: vec![0.1, 0.5],
            deadline: Duration::from_secs(1_800),
        }
    }
}

impl MillionBenchConfig {
    /// Edge count the BA generator will produce for this configuration:
    /// a clique on `attach + 1` seed vertices plus `attach` edges per
    /// later vertex.
    pub fn expected_edges(&self) -> usize {
        let k = self.attach;
        if self.vertices <= k + 1 {
            return self.vertices * self.vertices.saturating_sub(1) / 2;
        }
        k * (k + 1) / 2 + k * (self.vertices - k - 1)
    }
}

/// Counters of one sweep grid point (same keys as the thetasweep rows).
#[derive(Debug, Clone, Copy)]
pub struct MillionPerTheta {
    /// The threshold.
    pub theta: f64,
    /// Deterministic peel counters at this threshold.
    pub stats: PeelStats,
    /// Largest truss score at this threshold.
    pub max_score: u32,
}

/// Full report of a million-edge baseline run.
#[derive(Debug, Clone)]
pub struct MillionBenchReport {
    /// The configuration the report was produced with.
    pub config: MillionBenchConfig,
    /// Actual vertex count of the generated graph.
    pub vertices: usize,
    /// Actual edge count of the generated graph.
    pub edges: usize,
    /// Number of triangles.
    pub num_triangles: usize,
    /// `std::thread::available_parallelism()` of the measuring host.
    pub available_parallelism: usize,
    /// Seconds to generate the graph (reported only).
    pub generate_s: f64,
    /// Size of the written `.ugsnap` file in bytes — a pure function of
    /// the vertex and edge counts, so it gates exactly.
    pub snapshot_bytes: u64,
    /// Seconds to write the snapshot.
    pub snapshot_write_s: f64,
    /// Seconds to reload it through the owned byte-copying decoder.
    pub owned_reload_s: f64,
    /// Seconds to open it through the zero-copy path.
    pub mmap_open_s: f64,
    /// Whether the open actually mapped (false: owned fallback).
    pub mmap_used: bool,
    /// Seconds of the 1-thread triangle enumeration.
    pub triangles_1t_s: f64,
    /// Seconds of the `config.threads`-thread enumeration.
    pub triangles_nt_s: f64,
    /// Deterministic truss-sweep counters, in grid order.
    pub per_theta: Vec<MillionPerTheta>,
    /// Support builds of the sweep (must be 1).
    pub support_builds: usize,
    /// Wall seconds of the sweep phase.
    pub sweep_s: f64,
    /// Whether the sweep blew its deadline.
    pub deadline_exceeded: bool,
    /// Process-wide peak RSS at the end of the run (`VmHWM`; 0 when the
    /// platform lacks the probe).
    pub peak_rss_bytes: u64,
}

impl MillionBenchReport {
    /// Owned-reload time over mmap-open time.
    pub fn mmap_speedup(&self) -> f64 {
        self.owned_reload_s / self.mmap_open_s.max(1e-9)
    }

    /// 1-thread enumeration time over the scaled run's time.
    pub fn triangle_speedup(&self) -> f64 {
        self.triangles_1t_s / self.triangles_nt_s.max(1e-9)
    }

    /// Summed `dp_calls` across the grid.
    pub fn dp_calls_total(&self) -> usize {
        self.per_theta.iter().map(|p| p.stats.dp_calls).sum()
    }

    /// Serializes the report to the `bench-million/v1` JSON schema.
    pub fn to_json(&self) -> String {
        let grid: Vec<String> = self
            .per_theta
            .iter()
            .map(|p| format!("{:.6}", p.theta))
            .collect();
        let rows: Vec<String> = self
            .per_theta
            .iter()
            .map(|p| {
                format!(
                    "      {{ \"theta\": {:.6}, \"dp_calls\": {}, \"recompute_skips\": {}, \
                     \"buckets_touched\": {}, \"peak_scratch_bytes\": {}, \
                     \"peak_rss_bytes\": {}, \"max_score\": {} }}",
                    p.theta,
                    p.stats.dp_calls,
                    p.stats.recompute_skips,
                    p.stats.buckets_touched,
                    p.stats.peak_scratch_bytes,
                    p.stats.peak_rss_bytes,
                    p.max_score,
                )
            })
            .collect();
        format!(
            "{{\n  \"schema\": \"bench-million/v1\",\n  \"rank\": \"truss\",\n  \
             \"source\": {{ \"kind\": \"generated\", \
             \"generator\": \"{}\", \"requested_vertices\": {}, \
             \"attach\": {}, \"seed\": {} }},\n  \
             \"vertices\": {},\n  \"edges\": {},\n  \"seed\": {},\n  \
             \"available_parallelism\": {},\n  \
             \"counts\": {{ \"triangles\": {} }},\n  \
             \"million\": {{ \"vertices\": {}, \"edges\": {}, \
             \"snapshot_bytes\": {},\n               \
             \"streaming_chunk_edges\": {},\n               \
             \"generate_s\": {:.6}, \"snapshot_write_s\": {:.6},\n               \
             \"owned_reload_s\": {:.6}, \"mmap_open_s\": {:.6}, \
             \"mmap_speedup\": {:.3}, \"mmap_used\": {},\n               \
             \"threads\": {}, \"triangles_1t_s\": {:.6}, \
             \"triangles_nt_s\": {:.6}, \"triangle_speedup\": {:.3},\n               \
             \"peak_rss_bytes\": {} }},\n  \
             \"sweep\": {{\n    \"grid\": [ {} ],\n    \"grid_size\": {},\n    \
             \"support_builds\": {},\n    \"dp_calls_total\": {},\n    \
             \"sweep_s\": {:.6},\n    \"deadline_exceeded\": {},\n    \
             \"per_theta\": [\n{}\n    ]\n  }}\n}}\n",
            json_escape(GENERATOR_NAME),
            self.config.vertices,
            self.config.attach,
            self.config.seed,
            self.vertices,
            self.edges,
            self.config.seed,
            self.available_parallelism,
            self.num_triangles,
            self.vertices,
            self.edges,
            self.snapshot_bytes,
            self.config.streaming_chunk_edges,
            self.generate_s,
            self.snapshot_write_s,
            self.owned_reload_s,
            self.mmap_open_s,
            self.mmap_speedup(),
            self.mmap_used,
            self.config.threads,
            self.triangles_1t_s,
            self.triangles_nt_s,
            self.triangle_speedup(),
            self.peak_rss_bytes,
            grid.join(", "),
            self.per_theta.len(),
            self.support_builds,
            self.dp_calls_total(),
            self.sweep_s,
            self.deadline_exceeded,
            rows.join(",\n")
        )
    }

    /// Human-readable summary of the same measurements.
    pub fn format(&self) -> String {
        let mut out = format!(
            "million-edge baseline — {} vertices, {} edges (BA attach {}, seed {}), \
             {} triangles, host parallelism {}\n\
             snapshot: {} bytes, write {:.3}s, owned reload {:.3}s, \
             mmap open {:.3}s ({:.1}x faster{})\n\
             triangles: {:.3}s at 1 thread, {:.3}s at {} threads ({:.2}x)\n\
             peak RSS: {} bytes",
            self.vertices,
            self.edges,
            self.config.attach,
            self.config.seed,
            self.num_triangles,
            self.available_parallelism,
            self.snapshot_bytes,
            self.snapshot_write_s,
            self.owned_reload_s,
            self.mmap_open_s,
            self.mmap_speedup(),
            if self.mmap_used {
                ""
            } else {
                "; owned fallback"
            },
            self.triangles_1t_s,
            self.triangles_nt_s,
            self.config.threads,
            self.triangle_speedup(),
            self.peak_rss_bytes,
        );
        out.push_str(&format!(
            "\ntruss sweep ({} thresholds, {} support build(s), {:.3}s{}):",
            self.per_theta.len(),
            self.support_builds,
            self.sweep_s,
            if self.deadline_exceeded {
                ", DEADLINE EXCEEDED"
            } else {
                ""
            }
        ));
        for p in &self.per_theta {
            out.push_str(&format!(
                "\n  gamma {:.2}: dp_calls {}, skips {}, buckets {}, \
                 scratch peak {} bytes, max score {}",
                p.theta,
                p.stats.dp_calls,
                p.stats.recompute_skips,
                p.stats.buckets_touched,
                p.stats.peak_scratch_bytes,
                p.max_score,
            ));
        }
        out
    }
}

const GENERATOR_NAME: &str = "barabasi-albert-uniform";

/// Generates the baseline graph: BA structure, uniform probabilities in
/// `[0.2, 1.0]`, fully determined by the configuration.
pub fn generate_million_graph(config: &MillionBenchConfig) -> UncertainGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let structure = barabasi_albert_edges(config.vertices, config.attach, &mut rng);
    assign_probabilities(
        &structure,
        config.vertices,
        &ProbabilityModel::Uniform {
            low: 0.2,
            high: 1.0,
        },
        &mut rng,
    )
}

/// Runs the baseline.  Every differential assertion (snapshot reloads,
/// parallel counts, streaming index) panics on divergence — the bench
/// doubles as a correctness check at a scale the unit tests never reach.
pub fn run(config: &MillionBenchConfig) -> MillionBenchReport {
    let (graph, generate_t) = Timing::measure(|| generate_million_graph(config));

    // Snapshot round trip: owned decode vs zero-copy open, both asserted
    // bit-identical to the generated graph.
    let path = std::env::temp_dir().join(format!(
        "bench_million_{}_{}.ugsnap",
        config.seed,
        std::process::id()
    ));
    let (written, write_t) = Timing::measure(|| io::write_snapshot_file(&graph, &path));
    written.expect("snapshot write to the temp dir succeeds");
    let snapshot_bytes = std::fs::metadata(&path)
        .map(|m| m.len())
        .expect("snapshot file exists after writing");
    let (owned, owned_t) = Timing::measure(|| io::read_snapshot_file(&path));
    let owned = owned.expect("owned snapshot reload succeeds");
    assert_eq!(graph, owned, "owned snapshot reload diverged");
    drop(owned);
    let (mapped, mmap_t) = Timing::measure(|| io::open_snapshot(&path));
    let mapped = mapped.expect("zero-copy snapshot open succeeds");
    let mmap_used = mapped.is_mapped();
    assert_eq!(
        graph,
        *mapped.graph(),
        "zero-copy snapshot open diverged from the generated graph"
    );
    drop(mapped);
    std::fs::remove_file(&path).ok();

    // Triangle phase at 1 thread and at the configured count.
    let (tris_1t, t1) = Timing::measure(|| enumerate_triangles_with(&graph, Parallelism::fixed(1)));
    let (tris_nt, tn) =
        Timing::measure(|| enumerate_triangles_with(&graph, Parallelism::fixed(config.threads)));
    assert_eq!(
        tris_1t.len(),
        tris_nt.len(),
        "parallel triangle count diverged"
    );
    let num_triangles = tris_1t.len();
    drop(tris_nt);

    // Streaming index build in fixed chunks, asserted identical to the
    // index over the full enumeration.
    let reference = TriangleIndex::from_triangles(tris_1t);
    let streamed = TriangleIndex::try_build_streaming(&graph, config.streaming_chunk_edges)
        .expect("triangle count fits the u32 id space");
    assert_eq!(streamed.len(), reference.len(), "streaming index diverged");
    assert!(
        (0..streamed.len()).all(|i| streamed.triangle(i as u32) == reference.triangle(i as u32)),
        "streaming index diverged from the all-at-once build"
    );
    drop((reference, streamed));

    // Truss-rank sweep: one support build over the whole grid.
    let sweep_config = SweepConfig::exact(config.thetas.clone()).with_rank(Rank::Truss);
    let mut index = None;
    let mut sweep_s = f64::INFINITY;
    let (_, _, deadline_exceeded) = run_with_deadline(config.deadline, || {
        let (built, t) = Timing::measure(|| {
            DecompSweep::compute(&graph, &sweep_config).expect("valid sweep config")
        });
        sweep_s = t.seconds();
        index = Some(built);
    });
    let index = index.expect("the sweep ran");
    assert_eq!(index.support_builds(), 1, "sweep must build support once");
    let stats_grid = index.peel_stats();
    let per_theta: Vec<MillionPerTheta> = config
        .thetas
        .iter()
        .enumerate()
        .map(|(gi, &theta)| MillionPerTheta {
            theta,
            stats: stats_grid[gi],
            max_score: index.scores_at_index(gi).iter().copied().max().unwrap_or(0),
        })
        .collect();

    MillionBenchReport {
        config: config.clone(),
        vertices: graph.num_vertices(),
        edges: graph.num_edges(),
        num_triangles,
        available_parallelism: Parallelism::Auto.num_threads(),
        generate_s: generate_t.seconds(),
        snapshot_bytes,
        snapshot_write_s: write_t.seconds(),
        owned_reload_s: owned_t.seconds(),
        mmap_open_s: mmap_t.seconds(),
        mmap_used,
        triangles_1t_s: t1.seconds(),
        triangles_nt_s: tn.seconds(),
        per_theta,
        support_builds: index.support_builds(),
        sweep_s,
        deadline_exceeded,
        peak_rss_bytes: ugraph::metrics::peak_rss_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> MillionBenchConfig {
        MillionBenchConfig {
            vertices: 300,
            attach: 4,
            seed: 7,
            threads: 2,
            streaming_chunk_edges: 64,
            thetas: vec![0.1, 0.5],
            deadline: Duration::from_secs(120),
        }
    }

    #[test]
    fn default_config_clears_the_million_edge_bar() {
        let config = MillionBenchConfig::default();
        assert!(
            config.expected_edges() >= 1_000_000,
            "default must reach 1M edges, got {}",
            config.expected_edges()
        );
    }

    #[test]
    fn expected_edges_matches_the_generator() {
        let config = tiny_config();
        let graph = generate_million_graph(&config);
        assert_eq!(graph.num_edges(), config.expected_edges());
        // And is deterministic.
        assert_eq!(graph, generate_million_graph(&config));
    }

    #[test]
    fn report_is_consistent_and_gated_paths_parse() {
        let report = run(&tiny_config());
        assert_eq!(report.edges, tiny_config().expected_edges());
        assert!(report.num_triangles > 0, "BA graphs are triangle-rich");
        assert_eq!(report.support_builds, 1);
        assert_eq!(report.per_theta.len(), 2);
        assert!(!report.deadline_exceeded);
        if cfg!(target_os = "linux") {
            assert!(report.mmap_used, "mmap open fell back to the owned path");
            assert!(report.peak_rss_bytes > 0);
        }

        let json = report.to_json();
        assert!(json.contains("\"schema\": \"bench-million/v1\""));
        assert!(json.contains("\"rank\": \"truss\""));
        let doc = crate::json::Json::parse(&json).expect("report JSON parses");
        // Every gated path of the bench-compare table must be present.
        for path in [
            vec!["counts", "triangles"],
            vec!["million", "vertices"],
            vec!["million", "edges"],
            vec!["million", "snapshot_bytes"],
            vec!["million", "streaming_chunk_edges"],
            vec!["million", "peak_rss_bytes"],
            vec!["sweep", "support_builds"],
            vec!["sweep", "grid_size"],
            vec!["sweep", "dp_calls_total"],
        ] {
            assert!(
                doc.path(&path)
                    .and_then(crate::json::Json::as_f64)
                    .is_some(),
                "gated path {path:?} missing from the report"
            );
        }
        assert_eq!(
            doc.path(&["sweep", "support_builds"])
                .and_then(crate::json::Json::as_f64),
            Some(1.0)
        );
        assert_eq!(
            doc.path(&["million", "edges"])
                .and_then(crate::json::Json::as_f64),
            Some(report.edges as f64)
        );
        assert!(report.format().contains("truss sweep"));
    }

    #[test]
    fn counters_are_deterministic_across_runs() {
        let a = run(&tiny_config());
        let b = run(&tiny_config());
        assert_eq!(a.num_triangles, b.num_triangles);
        assert_eq!(a.snapshot_bytes, b.snapshot_bytes);
        assert_eq!(a.dp_calls_total(), b.dp_calls_total());
        for (x, y) in a.per_theta.iter().zip(&b.per_theta) {
            assert_eq!(x.stats, y.stats);
            assert_eq!(x.max_score, y.max_score);
        }
    }

    #[test]
    fn report_compares_cleanly_against_itself() {
        let report = run(&tiny_config());
        let doc = crate::json::Json::parse(&report.to_json()).unwrap();
        let compared = crate::compare::compare(&doc, &doc, 0.0).unwrap();
        assert!(compared.regressions().is_empty(), "{}", compared.format());
        assert_eq!(compared.generation_skew(), None);
    }
}
