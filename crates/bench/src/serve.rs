//! Query-service smoke benchmark (`experiments serve --oneshot`) with
//! machine-readable JSON output.
//!
//! Boots an [`nd_server::Server`] on a loopback port, drives the fixed
//! [`nd_server::oneshot`] script over real TCP, and emits a
//! `bench-serve/v2` report.  The script is deterministic, so every
//! [`nd_server::StatsSnapshot`] counter it produces is a pure function
//! of the script — `bench-compare` gates them all at tolerance 0 (the
//! interesting invariants: `support_builds == 1` no matter how many
//! sessions open, repeated-θ queries land as `cache_hits`,
//! `protocol_errors == 0` because the script never sends a malformed
//! frame, and since v2 the `apply_updates` counters: exactly one batch
//! applied, exactly one support repaired — never rebuilt — and the
//! exact number of cached points invalidated).
//!
//! ```json
//! {
//!   "schema": "bench-serve/v2",
//!   "source": { "kind": "generated", ... },
//!   "vertices": 2000, "edges": 50000, "seed": 42,
//!   "thetas": [ 0.100000, 0.300000 ],
//!   "oneshot": { "passed": true, "bit_identical": true, "failures": [ ] },
//!   "stats": { "requests": 28, "batches": 1, "protocol_errors": 0,
//!              "cache_hits": 9, "cache_misses": 4, "support_builds": 1,
//!              "updates_applied": 1, "supports_repaired": 1,
//!              "cache_invalidations": 2, ... }
//! }
//! ```
//!
//! Wall-clock timings are deliberately absent: the whole report is
//! deterministic, so the diff gate needs no tolerance carve-outs.

use nd_datasets::ExternalDataset;
use nd_server::{run_oneshot, ClientError, OneshotOptions, OneshotReport};
use ugraph::par::Parallelism;

use crate::parbench::{
    generate_graph, ingest, json_escape, json_source_object, IngestError, IngestTimings,
};

/// Configuration of the serve smoke benchmark.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Number of vertices of the generated G(n, m) graph.
    pub vertices: usize,
    /// Number of edges of the generated G(n, m) graph.
    pub edges: usize,
    /// RNG seed for structure and probability generation.
    pub seed: u64,
    /// The θ grid the scripted session pins (≥ 2 points).
    pub thetas: Vec<f64>,
    /// LRU capacity of the server under test.
    pub cache_capacity: usize,
    /// Worker-pool size; `None` means [`Parallelism::Auto`].
    pub threads: Option<usize>,
    /// Ingested input overriding the generator (same semantics as
    /// `parbench --input`).
    pub input: Option<ExternalDataset>,
}

impl Default for ServeBenchConfig {
    /// Same graph shape as the parbench/thetasweep defaults (average
    /// degree 50), so the three reports describe the same workload.
    fn default() -> Self {
        let defaults = OneshotOptions::default();
        ServeBenchConfig {
            vertices: 2_000,
            edges: 50_000,
            seed: 42,
            thetas: defaults.thetas,
            cache_capacity: defaults.cache_capacity,
            threads: None,
            input: None,
        }
    }
}

/// Why the serve benchmark failed before producing a report.
#[derive(Debug)]
pub enum ServeBenchError {
    /// The `--input` graph could not be ingested.
    Ingest(IngestError),
    /// The scripted client lost its connection or got a malformed
    /// response — a transport failure, not a failed check (failed checks
    /// land in [`OneshotReport::failures`]).
    Client(ClientError),
}

impl std::fmt::Display for ServeBenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeBenchError::Ingest(e) => write!(f, "{e}"),
            ServeBenchError::Client(e) => write!(f, "serve oneshot transport failed: {e}"),
        }
    }
}

impl std::error::Error for ServeBenchError {}

/// Full report of a serve smoke run.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// The configuration the report was produced with.
    pub config: ServeBenchConfig,
    /// Ingestion timings when the graph came from `--input`.
    pub ingest: Option<IngestTimings>,
    /// The scripted session's verdicts and final counters.
    pub oneshot: OneshotReport,
}

impl ServeBenchReport {
    /// `true` when every scripted check (bit-identity, typed errors,
    /// cache behaviour) passed.
    pub fn passed(&self) -> bool {
        self.oneshot.passed()
    }

    /// Serializes the report to the `bench-serve/v2` JSON schema.
    ///
    /// Ingest timings ([`ServeBenchReport::ingest`]) are deliberately
    /// not serialized: they are wall-clock measurements, and this
    /// report carries only counters that diff at tolerance 0 — the
    /// parbench report already gates ingest performance for the same
    /// inputs.
    pub fn to_json(&self) -> String {
        let thetas: Vec<String> = self
            .oneshot
            .thetas
            .iter()
            .map(|t| format!("{t:.6}"))
            .collect();
        let failures: Vec<String> = self
            .oneshot
            .failures
            .iter()
            .map(|f| format!("\"{}\"", json_escape(f)))
            .collect();
        format!(
            "{{\n  \"schema\": \"bench-serve/v2\",\n  \"source\": {},\n  \
             \"vertices\": {},\n  \"edges\": {},\n  \"seed\": {},\n  \
             \"thetas\": [ {} ],\n  \
             \"oneshot\": {{ \"passed\": {}, \"bit_identical\": {}, \"failures\": [ {} ] }},\n  \
             \"stats\": {}\n}}\n",
            json_source_object(
                self.config.input.as_ref(),
                None,
                self.config.vertices,
                self.config.edges,
                self.config.seed,
            ),
            self.oneshot.vertices,
            self.oneshot.edges,
            self.config.seed,
            thetas.join(", "),
            self.passed(),
            self.oneshot.bit_identical,
            failures.join(", "),
            self.oneshot.stats.to_json().to_json_string(),
        )
    }

    /// Human-readable summary of the same run.
    pub fn format(&self) -> String {
        let stats = &self.oneshot.stats;
        let verdict = if self.passed() {
            "PASSED".to_string()
        } else {
            format!("FAILED ({})", self.oneshot.failures.join("; "))
        };
        format!(
            "serve oneshot — {} vertices, {} edges, grid {:?}\n\
             verdict: {verdict} (bit-identical to library calls: {})\n\
             requests: {} ({} batch), typed request errors: {}, protocol errors: {}\n\
             cache: {} hits / {} misses / {} evictions; support builds: {}\n\
             sessions: {} opened / {} closed; deadline hits: {}\n\
             updates: {} applied; supports repaired: {}; cache invalidations: {}",
            self.oneshot.vertices,
            self.oneshot.edges,
            self.oneshot.thetas,
            self.oneshot.bit_identical,
            stats.requests,
            stats.batches,
            stats.request_errors,
            stats.protocol_errors,
            stats.cache_hits,
            stats.cache_misses,
            stats.cache_evictions,
            stats.support_builds,
            stats.sessions_opened,
            stats.sessions_closed,
            stats.deadlines_exceeded,
            stats.updates_applied,
            stats.supports_repaired,
            stats.cache_invalidations,
        )
    }
}

/// Runs the smoke benchmark: ingest or generate the graph, boot a
/// server, drive the scripted session, collect the drained counters.
pub fn run(config: &ServeBenchConfig) -> Result<ServeBenchReport, ServeBenchError> {
    let (graph, ingest_timings) = match &config.input {
        Some(input) => ingest(input).map_err(ServeBenchError::Ingest)?,
        None => (
            generate_graph(config.vertices, config.edges, config.seed),
            None,
        ),
    };
    let options = OneshotOptions {
        thetas: config.thetas.clone(),
        cache_capacity: config.cache_capacity,
        parallelism: match config.threads {
            Some(t) => Parallelism::fixed(t),
            None => Parallelism::Auto,
        },
    };
    let oneshot = run_oneshot(&graph, &options).map_err(ServeBenchError::Client)?;
    Ok(ServeBenchReport {
        config: config.clone(),
        ingest: ingest_timings,
        oneshot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn tiny_config() -> ServeBenchConfig {
        ServeBenchConfig {
            vertices: 60,
            edges: 400,
            seed: 7,
            ..ServeBenchConfig::default()
        }
    }

    #[test]
    fn report_passes_and_has_v2_schema() {
        let report = run(&tiny_config()).unwrap();
        assert!(report.passed(), "failures: {:?}", report.oneshot.failures);
        assert!(report.oneshot.bit_identical);
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"bench-serve/v2\""));
        assert!(json.contains("\"kind\": \"generated\""));
        let doc = Json::parse(&json).expect("report JSON parses");
        assert_eq!(
            doc.path(&["oneshot", "passed"]).and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(
            doc.path(&["stats", "support_builds"])
                .and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(
            doc.path(&["stats", "protocol_errors"])
                .and_then(Json::as_f64),
            Some(0.0)
        );
        // The v2 script queries both θ before and after its update batch:
        // 2 pre-update misses, 2 post-update misses on the repaired rank.
        assert_eq!(
            doc.path(&["stats", "cache_misses"]).and_then(Json::as_f64),
            Some(4.0)
        );
        assert_eq!(
            doc.path(&["stats", "updates_applied"])
                .and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(
            doc.path(&["stats", "supports_repaired"])
                .and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(
            doc.path(&["stats", "cache_invalidations"])
                .and_then(Json::as_f64),
            Some(2.0)
        );
        assert!(report.format().contains("PASSED"));
        assert!(report.format().contains("supports repaired: 1"));
    }

    #[test]
    fn counters_are_deterministic_across_runs() {
        let a = run(&tiny_config()).unwrap();
        let b = run(&tiny_config()).unwrap();
        assert_eq!(a.oneshot.stats, b.oneshot.stats);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn input_mode_records_provenance() {
        use ugraph::io::EdgeProbabilityModel;
        use ugraph::InputFormat;

        let dir = std::env::temp_dir().join("serve_input_mode_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.txt");
        ugraph::io::write_edge_list_file(&generate_graph(60, 400, 7), &path).unwrap();

        let mut config = tiny_config();
        config.input = Some(ExternalDataset::new(
            &path,
            InputFormat::Snap,
            EdgeProbabilityModel::Column,
        ));
        let report = run(&config).unwrap();
        assert!(report.passed(), "failures: {:?}", report.oneshot.failures);
        assert!(report.ingest.is_some());
        assert_eq!(report.oneshot.edges, 400);
        let json = report.to_json();
        assert!(json.contains("\"kind\": \"file\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_input_surfaces_the_unified_error() {
        let mut config = tiny_config();
        config.input = Some(ExternalDataset::new(
            "/nonexistent/serve_bench.txt",
            ugraph::InputFormat::Snap,
            ugraph::io::EdgeProbabilityModel::Column,
        ));
        let err = run(&config).unwrap_err();
        let message = err.to_string();
        assert!(
            message.starts_with("cannot load /nonexistent/serve_bench.txt:"),
            "{message}"
        );
    }
}
