//! Parallel-substrate benchmark with machine-readable JSON output.
//!
//! The paper's experiments (Section 7) are dominated by triangle and
//! 4-clique enumeration and support computation; `ugraph::par` makes those
//! hot paths multi-threaded.  This module measures them at a range of
//! thread counts against the sequential baseline on a seeded random graph
//! and emits a `BENCH_parallel.json` report, so the performance trajectory
//! of the substrate becomes a tracked, diffable artifact instead of a
//! number in a PR description.
//!
//! The JSON schema (`bench-parallel/v6` — the documented field-by-field
//! reference of every bench report family lives in
//! `docs/BENCH_SCHEMAS.md`):
//!
//! ```json
//! {
//!   "schema": "bench-parallel/v6",
//!   "source": { "kind": "generated", "generator": "gnm-uniform",
//!               "requested_vertices": 2000, "requested_edges": 50000,
//!               "seed": 42 },
//!   "vertices": 5000, "edges": 50000, "seed": 42, "repeats": 3,
//!   "available_parallelism": 8,
//!   "counts": { "triangles": 16500, "four_cliques": 120 },
//!   "peel": { "theta": 0.1, "dp_calls": 8, "recompute_skips": 120,
//!             "buckets_touched": 3, "peak_scratch_bytes": 1840,
//!             "peak_rss_bytes": 73400320,
//!             "reference_dp_calls": 150, "dp_calls_saved_pct": 94.7,
//!             "max_score": 2,
//!             "method_counts": [ { "method": "DP", "count": 16500 } ],
//!             "peel_s": 0.09, "reference_peel_s": 0.15 },
//!   "baseline": { "threads": 1, "triangles_s": 0.41, "four_cliques_s": 0.52,
//!                 "support_s": 1.08, "total_s": 2.01, "speedup": 1.0,
//!                 "deadline_exceeded": false },
//!   "runs": [ { "threads": 4, "triangles_s": 0.11, ... , "speedup": 3.6,
//!               "deadline_exceeded": false } ]
//! }
//! ```
//!
//! The `peel` object carries the deterministic perf counters of the
//! ℓ-NuDecomp peeling engine ([`nucleus::PeelStats`]) next to the frozen
//! reference engine's `reference_dp_calls`; `method_counts` is emitted as
//! an array **sorted by method name** so the JSON is byte-stable (a
//! `HashMap` iteration order must never leak into a tracked artifact).
//! `experiments bench-compare` diffs two such files and gates CI on the
//! counters, never on the wall-clock fields (`*_s`, `speedup`).
//!
//! With `--input` the `source` object records the ingested file instead —
//! its path, format and probability model plus the ingestion timings
//! (text parse vs `.ugsnap` snapshot reload), so the dataset provenance
//! and the snapshot-cache speedup are part of the tracked artifact:
//!
//! ```json
//! "source": { "kind": "file", "path": "graphs/soc.txt", "format": "snap",
//!             "prob_model": "column",
//!             "ingest": { "parse_s": 1.21, "snapshot_write_s": 0.05,
//!                         "snapshot_reload_s": 0.07,
//!                         "reload_speedup": 17.3,
//!                         "snapshot_mmap_s": 0.004, "mmap_speedup": 17.5,
//!                         "mmap_used": true } }
//! ```
//!
//! Timings are best-of-`repeats` wall-clock seconds per phase; `speedup`
//! is the sequential total divided by the run's total.  Every run is
//! guarded by a condvar-based deadline watchdog
//! ([`crate::runner::run_with_deadline`]) whose overrun flag lands in the
//! JSON rather than hanging CI.

use std::time::Duration;

use nd_datasets::ExternalDataset;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ugraph::cliques::FourCliqueEnumerator;
use ugraph::generators::{assign_probabilities, gnm_edges, ProbabilityModel};
use ugraph::io;
use ugraph::par::Parallelism;
use ugraph::triangles::enumerate_triangles_with;
use ugraph::UncertainGraph;

use nucleus::local::reference;
use nucleus::{LocalConfig, LocalNucleusDecomposition, PeelStats, SupportStructure};

use crate::runner::{format_table, run_with_deadline, Timing};

/// Configuration of the parallel-substrate benchmark.
#[derive(Debug, Clone)]
pub struct ParBenchConfig {
    /// Number of vertices of the generated G(n, m) graph.
    pub vertices: usize,
    /// Number of edges of the generated G(n, m) graph.
    pub edges: usize,
    /// RNG seed for structure and probability generation.
    pub seed: u64,
    /// Thread counts to measure (the sequential baseline always runs).
    pub threads: Vec<usize>,
    /// Repetitions per configuration; best (minimum) time is reported.
    pub repeats: usize,
    /// Wall-clock budget per measured configuration.
    pub deadline: Duration,
    /// Ingested input overriding the generator: the benchmark then also
    /// measures text-parse vs snapshot-reload and records the file as the
    /// dataset provenance.
    pub input: Option<ExternalDataset>,
}

impl Default for ParBenchConfig {
    /// 50k edges over 2k vertices (average degree 50, so triangles *and*
    /// 4-cliques are plentiful) — the scale the acceptance bar of the
    /// parallel substrate is measured at.
    fn default() -> Self {
        ParBenchConfig {
            vertices: 2_000,
            edges: 50_000,
            seed: 42,
            threads: vec![2, 4],
            repeats: 3,
            deadline: Duration::from_secs(600),
            input: None,
        }
    }
}

/// Why ingesting an `--input` file failed.  Every `experiments`
/// subcommand that takes `--input` funnels through this one type, so a
/// missing or unreadable file produces the same message and the same
/// non-zero exit no matter which subcommand it was passed to.
#[derive(Debug)]
pub enum IngestError {
    /// The input file could not be parsed or read.
    Load {
        /// The file that failed.
        path: std::path::PathBuf,
        /// The underlying parse/IO error.
        error: ugraph::GraphError,
    },
    /// A snapshot cache we just wrote failed to read back.
    SnapshotReload {
        /// The cache file that failed.
        path: std::path::PathBuf,
        /// The underlying reload error.
        error: ugraph::GraphError,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // Same wording as the generic experiments' --input path, so
            // the operator-visible message is subcommand-independent.
            IngestError::Load { path, error } => {
                write!(f, "cannot load {}: {error}", path.display())
            }
            IngestError::SnapshotReload { path, error } => {
                write!(f, "cannot reload snapshot {}: {error}", path.display())
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// Wall-clock costs of ingesting the `--input` file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestTimings {
    /// Seconds to parse the source file (text parse for SNAP/Konect,
    /// snapshot read when the source already is a snapshot).
    pub parse_s: f64,
    /// Seconds to write the `.ugsnap` snapshot cache.
    pub snapshot_write_s: f64,
    /// Seconds to reload the graph from that snapshot through the owned
    /// byte-copying decoder.
    pub snapshot_reload_s: f64,
    /// Seconds to open the same snapshot through
    /// [`ugraph::io::open_snapshot`], which memory-maps and borrows the
    /// sections in place when the platform allows it.
    pub snapshot_mmap_s: f64,
    /// Whether the open actually took the zero-copy mapped path (`false`
    /// means the platform or file forced the owned fallback, so
    /// `snapshot_mmap_s` measures a second owned decode).
    pub mmap_used: bool,
}

impl IngestTimings {
    /// How much faster the snapshot reload is than the original parse —
    /// the figure of merit of the snapshot cache.
    pub fn reload_speedup(&self) -> f64 {
        self.parse_s / self.snapshot_reload_s.max(1e-9)
    }

    /// How much faster the zero-copy open is than the owned decode —
    /// the figure of merit of the mmap reader.
    pub fn mmap_speedup(&self) -> f64 {
        self.snapshot_reload_s / self.snapshot_mmap_s.max(1e-9)
    }
}

/// Perf-counter measurement of the peeling engine: the production engine
/// and the frozen reference engine run on the same support structure
/// (sanity-asserting bit-identical scores on the way), so the report can
/// record the deferred engine's DP savings as a tracked number.
#[derive(Debug, Clone)]
pub struct PeelBench {
    /// θ the decomposition ran at ([`LocalConfig::default`]).
    pub theta: f64,
    /// Deterministic counters of the production engine.
    pub stats: PeelStats,
    /// Peeling-time score recomputations of the reference engine — the
    /// denominator of the advertised savings.
    pub reference_dp_calls: usize,
    /// Largest ℓ-nucleusness in the graph.
    pub max_score: u32,
    /// Initial-pass evaluation methods, sorted by method name so the
    /// JSON is byte-stable.
    pub method_counts: Vec<(String, usize)>,
    /// Wall-clock seconds of the production engine (reported, not gated).
    pub peel_s: f64,
    /// Wall-clock seconds of the reference engine (reported, not gated).
    pub reference_peel_s: f64,
}

impl PeelBench {
    /// Percentage of the reference engine's recomputations the deferred
    /// engine avoided (0 when the reference did none).
    pub fn dp_calls_saved_pct(&self) -> f64 {
        if self.reference_dp_calls == 0 {
            return 0.0;
        }
        100.0 * (1.0 - self.stats.dp_calls as f64 / self.reference_dp_calls as f64)
    }
}

/// Best-of-repeats wall-clock seconds for each measured phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseTimings {
    /// Triangle enumeration.
    pub triangles_s: f64,
    /// 4-clique enumeration.
    pub four_cliques_s: f64,
    /// Full support-structure construction (includes both enumerations
    /// plus completion probabilities).
    pub support_s: f64,
}

impl PhaseTimings {
    /// Sum of the three phases.
    pub fn total_s(&self) -> f64 {
        self.triangles_s + self.four_cliques_s + self.support_s
    }
}

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct ThreadRun {
    /// Worker threads used (1 = the sequential baseline).
    pub threads: usize,
    /// Best-of-repeats phase timings.
    pub timings: PhaseTimings,
    /// Sequential total divided by this run's total.
    pub speedup: f64,
    /// `true` when the configuration blew its wall-clock budget.
    pub deadline_exceeded: bool,
}

/// Full report of a parallel-substrate benchmark run.
#[derive(Debug, Clone)]
pub struct ParBenchReport {
    /// The configuration the report was produced with.
    pub config: ParBenchConfig,
    /// Actual number of vertices of the measured graph.
    pub actual_vertices: usize,
    /// Actual number of edges of the measured graph (G(n, m) can emit
    /// slightly fewer than requested on dense inputs; files have whatever
    /// they have).
    pub actual_edges: usize,
    /// Ingestion timings when the graph came from `--input`.
    pub ingest: Option<IngestTimings>,
    /// Number of triangles of the graph.
    pub num_triangles: usize,
    /// Number of 4-cliques of the graph.
    pub num_four_cliques: usize,
    /// `std::thread::available_parallelism()` of the measuring host —
    /// needed to interpret speedups (a 1-core host cannot speed up).
    pub available_parallelism: usize,
    /// Peeling-engine perf counters (production vs reference engine).
    pub peel: PeelBench,
    /// The sequential baseline.
    pub baseline: ThreadRun,
    /// The parallel runs, in the order of `config.threads`.
    pub runs: Vec<ThreadRun>,
}

/// Generates the benchmark graph: G(n, m) structure with uniform edge
/// probabilities in `[0.2, 1.0]`, fully determined by `seed`.
pub fn generate_graph(vertices: usize, edges: usize, seed: u64) -> UncertainGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let structure = gnm_edges(vertices, edges, &mut rng);
    assign_probabilities(
        &structure,
        vertices,
        &ProbabilityModel::Uniform {
            low: 0.2,
            high: 1.0,
        },
        &mut rng,
    )
}

fn measure_config(
    graph: &UncertainGraph,
    parallelism: Parallelism,
    repeats: usize,
    deadline: Duration,
) -> (PhaseTimings, bool, usize, usize) {
    let mut best = PhaseTimings {
        triangles_s: f64::INFINITY,
        four_cliques_s: f64::INFINITY,
        support_s: f64::INFINITY,
    };
    let mut num_triangles = 0usize;
    let mut num_cliques = 0usize;
    let ((), _total, exceeded) = run_with_deadline(deadline, || {
        for _ in 0..repeats.max(1) {
            let (tris, t1) = Timing::measure(|| enumerate_triangles_with(graph, parallelism));
            let (cliques, t2) =
                Timing::measure(|| FourCliqueEnumerator::with_parallelism(graph, parallelism));
            let (support, t3) =
                Timing::measure(|| SupportStructure::build_with(graph, parallelism));
            num_triangles = tris.len();
            num_cliques = cliques.len();
            assert_eq!(
                support.num_triangles(),
                num_triangles,
                "support structure disagrees with the triangle enumeration"
            );
            best.triangles_s = best.triangles_s.min(t1.seconds());
            best.four_cliques_s = best.four_cliques_s.min(t2.seconds());
            best.support_s = best.support_s.min(t3.seconds());
        }
    });
    (best, exceeded, num_triangles, num_cliques)
}

/// Runs the ℓ-NuDecomp peeling engine and the frozen reference engine on
/// the benchmark graph at [`LocalConfig::default`] (exact DP, θ = 0.1)
/// and returns their perf counters.  Wall times are best-of-`repeats`
/// like every other phase, so neither engine is billed for cold caches.
/// Panics if the engines disagree on a single score — the benchmark
/// doubles as a CI-enforced bit-identity check at real scale.
fn measure_peel(graph: &UncertainGraph, repeats: usize) -> PeelBench {
    let config = LocalConfig::default();
    let mut support = Some(SupportStructure::build_with(graph, Parallelism::Auto));
    let mut reference_s = f64::INFINITY;
    let mut engine_s = f64::INFINITY;
    let mut last = None;
    for r in 0..repeats.max(1) {
        let borrowed = support
            .as_ref()
            .expect("support consumed only on the last repeat");
        let (oracle, reference_t) = Timing::measure(|| {
            reference::decompose(borrowed, &config).expect("default config is valid")
        });
        reference_s = reference_s.min(reference_t.seconds());
        // The last repeat moves the support into the engine; earlier
        // repeats clone it *outside* the measured closure.
        let engine_input = if r + 1 == repeats.max(1) {
            support.take().expect("support still present")
        } else {
            borrowed.clone()
        };
        let (decomp, engine_t) = Timing::measure(|| {
            LocalNucleusDecomposition::with_support(engine_input, &config)
                .expect("default config is valid")
        });
        engine_s = engine_s.min(engine_t.seconds());
        last = Some((decomp, oracle));
    }
    let (decomp, oracle) = last.expect("at least one repeat ran");
    assert_eq!(
        decomp.scores(),
        &oracle.scores[..],
        "peeling engine diverged from the reference implementation"
    );
    assert_eq!(decomp.initial_scores(), &oracle.initial_scores[..]);
    assert_eq!(decomp.method_counts(), &oracle.method_counts);

    let mut method_counts: Vec<(String, usize)> = decomp
        .method_counts()
        .iter()
        .map(|(m, &n)| (m.name().to_string(), n))
        .collect();
    method_counts.sort();

    PeelBench {
        theta: config.theta,
        stats: *decomp.peel_stats(),
        reference_dp_calls: oracle.dp_calls,
        max_score: decomp.max_score(),
        method_counts,
        peel_s: engine_s,
        reference_peel_s: reference_s,
    }
}

/// Ingests `config.input`, measuring text parse, snapshot-cache write and
/// snapshot reload, and verifying the reloaded graph is identical.
///
/// Sources that already are snapshots skip the cache round-trip (it would
/// measure snapshot-vs-snapshot and litter the dataset directory), and an
/// unwritable dataset directory degrades to a temp-dir cache — or, if
/// even that fails, to running the benchmark without ingest timings.
pub(crate) fn ingest(
    input: &ExternalDataset,
) -> Result<(UncertainGraph, Option<IngestTimings>), IngestError> {
    let (parsed, parse_t) = Timing::measure(|| input.load());
    let graph = parsed.map_err(|error| IngestError::Load {
        path: input.path.clone(),
        error,
    })?;
    if input.format == ugraph::InputFormat::Snapshot {
        return Ok((graph, None));
    }
    let preferred = input.snapshot_cache_path();
    let (written, write_t) = Timing::measure(|| io::write_snapshot_file(&graph, &preferred));
    let (cache, write_t) = match written {
        Ok(()) => (preferred, write_t),
        Err(_) => {
            // Read-only dataset directory (load_cached tolerates this
            // too); fall back to the temp dir before giving up.
            let fallback = std::env::temp_dir().join(
                preferred
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_else(|| "parbench_cache.ugsnap".to_string()),
            );
            let (retried, retry_t) = Timing::measure(|| io::write_snapshot_file(&graph, &fallback));
            match retried {
                Ok(()) => (fallback, retry_t),
                Err(e) => {
                    eprintln!(
                        "warning: cannot write a snapshot cache for {} ({e}); \
                         benchmarking without ingest timings",
                        input.path.display()
                    );
                    return Ok((graph, None));
                }
            }
        }
    };
    let (reloaded, reload_t) = Timing::measure(|| io::read_snapshot_file(&cache));
    let reloaded = reloaded.map_err(|error| IngestError::SnapshotReload {
        path: cache.clone(),
        error,
    })?;
    assert_eq!(
        graph,
        reloaded,
        "snapshot reload of {} diverged from the parsed graph",
        input.path.display()
    );
    // Differential check of the zero-copy path: the mapped graph must be
    // bit-identical to the parsed one, and its open time is the tracked
    // figure of merit of the mmap reader.
    let (mapped, mmap_t) = Timing::measure(|| io::open_snapshot(&cache));
    let mapped = mapped.map_err(|error| IngestError::SnapshotReload {
        path: cache.clone(),
        error,
    })?;
    let mmap_used = mapped.is_mapped();
    assert_eq!(
        graph,
        *mapped.graph(),
        "zero-copy snapshot open of {} diverged from the parsed graph",
        cache.display()
    );
    Ok((
        graph,
        Some(IngestTimings {
            parse_s: parse_t.seconds(),
            snapshot_write_s: write_t.seconds(),
            snapshot_reload_s: reload_t.seconds(),
            snapshot_mmap_s: mmap_t.seconds(),
            mmap_used,
        }),
    ))
}

/// Runs the benchmark: sequential baseline first, then every requested
/// thread count, verifying on the way that the parallel results agree with
/// the sequential ones.
pub fn run(config: &ParBenchConfig) -> Result<ParBenchReport, IngestError> {
    let (graph, ingest_timings) = match &config.input {
        Some(input) => ingest(input)?,
        None => (
            generate_graph(config.vertices, config.edges, config.seed),
            None,
        ),
    };
    let (baseline_timings, baseline_exceeded, num_triangles, num_four_cliques) = measure_config(
        &graph,
        Parallelism::Sequential,
        config.repeats,
        config.deadline,
    );
    let baseline_total = baseline_timings.total_s();
    let baseline = ThreadRun {
        threads: 1,
        timings: baseline_timings,
        speedup: 1.0,
        deadline_exceeded: baseline_exceeded,
    };

    let mut runs = Vec::with_capacity(config.threads.len());
    for &threads in &config.threads {
        let (timings, exceeded, tris, cliques) = measure_config(
            &graph,
            Parallelism::fixed(threads),
            config.repeats,
            config.deadline,
        );
        assert_eq!(tris, num_triangles, "parallel triangle count diverged");
        assert_eq!(
            cliques, num_four_cliques,
            "parallel 4-clique count diverged"
        );
        let total = timings.total_s();
        runs.push(ThreadRun {
            threads,
            timings,
            speedup: if total > 0.0 {
                baseline_total / total
            } else {
                1.0
            },
            deadline_exceeded: exceeded,
        });
    }

    let peel = measure_peel(&graph, config.repeats);

    Ok(ParBenchReport {
        config: config.clone(),
        actual_vertices: graph.num_vertices(),
        actual_edges: graph.num_edges(),
        ingest: ingest_timings,
        num_triangles,
        num_four_cliques,
        available_parallelism: Parallelism::Auto.num_threads(),
        peel,
        baseline,
        runs,
    })
}

fn json_run(run: &ThreadRun) -> String {
    format!(
        "{{ \"threads\": {}, \"triangles_s\": {:.6}, \"four_cliques_s\": {:.6}, \
         \"support_s\": {:.6}, \"total_s\": {:.6}, \"speedup\": {:.3}, \
         \"deadline_exceeded\": {} }}",
        run.threads,
        run.timings.triangles_s,
        run.timings.four_cliques_s,
        run.timings.support_s,
        run.timings.total_s(),
        run.speedup,
        run.deadline_exceeded
    )
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes) for
/// the path and model fields of the provenance object.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The `source` provenance object shared by the bench JSON reports
/// (`parbench` and `thetasweep`): the ingested file plus its timings, or
/// the generator parameters.
pub(crate) fn json_source_object(
    input: Option<&ExternalDataset>,
    ingest: Option<&IngestTimings>,
    requested_vertices: usize,
    requested_edges: usize,
    seed: u64,
) -> String {
    match (input, ingest) {
        (Some(input), Some(t)) => format!(
            "{{ \"kind\": \"file\", \"path\": \"{}\", \"format\": \"{}\", \
                 \"prob_model\": \"{}\",\n             \"ingest\": {{ \"parse_s\": {:.6}, \
                 \"snapshot_write_s\": {:.6}, \"snapshot_reload_s\": {:.6}, \
                 \"reload_speedup\": {:.3},\n                         \
                 \"snapshot_mmap_s\": {:.6}, \"mmap_speedup\": {:.3}, \
                 \"mmap_used\": {} }} }}",
            json_escape(&input.path.display().to_string()),
            input.format,
            json_escape(&input.probability.to_string()),
            t.parse_s,
            t.snapshot_write_s,
            t.snapshot_reload_s,
            t.reload_speedup(),
            t.snapshot_mmap_s,
            t.mmap_speedup(),
            t.mmap_used
        ),
        // Snapshot sources (or an unwritable cache) have no ingest
        // timings, but the provenance is still the file.
        (Some(input), None) => format!(
            "{{ \"kind\": \"file\", \"path\": \"{}\", \"format\": \"{}\", \
             \"prob_model\": \"{}\" }}",
            json_escape(&input.path.display().to_string()),
            input.format,
            json_escape(&input.probability.to_string()),
        ),
        (None, _) => format!(
            "{{ \"kind\": \"generated\", \"generator\": \"gnm-uniform\", \
             \"requested_vertices\": {requested_vertices}, \
             \"requested_edges\": {requested_edges}, \"seed\": {seed} }}"
        ),
    }
}

impl ParBenchReport {
    /// The `source` provenance object of the JSON report.
    fn json_source(&self) -> String {
        json_source_object(
            self.config.input.as_ref(),
            self.ingest.as_ref(),
            self.config.vertices,
            self.config.edges,
            self.config.seed,
        )
    }

    /// The `peel` perf-counter object of the JSON report.  The method
    /// counts are a sorted array — never a map in hash order — so the
    /// serialization is byte-stable across runs and toolchains.
    fn json_peel(&self) -> String {
        let methods: Vec<String> = self
            .peel
            .method_counts
            .iter()
            .map(|(name, count)| {
                format!(
                    "{{ \"method\": \"{}\", \"count\": {} }}",
                    json_escape(name),
                    count
                )
            })
            .collect();
        format!(
            "{{ \"theta\": {:.6}, \"dp_calls\": {}, \"recompute_skips\": {}, \
             \"buckets_touched\": {}, \"peak_scratch_bytes\": {}, \
             \"peak_rss_bytes\": {},\n            \
             \"reference_dp_calls\": {}, \"dp_calls_saved_pct\": {:.3}, \"max_score\": {},\n            \
             \"method_counts\": [ {} ],\n            \
             \"peel_s\": {:.6}, \"reference_peel_s\": {:.6} }}",
            self.peel.theta,
            self.peel.stats.dp_calls,
            self.peel.stats.recompute_skips,
            self.peel.stats.buckets_touched,
            self.peel.stats.peak_scratch_bytes,
            self.peel.stats.peak_rss_bytes,
            self.peel.reference_dp_calls,
            self.peel.dp_calls_saved_pct(),
            self.peel.max_score,
            methods.join(", "),
            self.peel.peel_s,
            self.peel.reference_peel_s,
        )
    }

    /// Serializes the report to the `bench-parallel/v6` JSON schema.
    pub fn to_json(&self) -> String {
        let runs: Vec<String> = self
            .runs
            .iter()
            .map(|r| format!("    {}", json_run(r)))
            .collect();
        format!(
            "{{\n  \"schema\": \"bench-parallel/v6\",\n  \"source\": {},\n  \
             \"vertices\": {},\n  \"edges\": {},\n  \"seed\": {},\n  \"repeats\": {},\n  \
             \"available_parallelism\": {},\n  \"counts\": {{ \"triangles\": {}, \
             \"four_cliques\": {} }},\n  \"peel\": {},\n  \"baseline\": {},\n  \
             \"runs\": [\n{}\n  ]\n}}\n",
            self.json_source(),
            self.actual_vertices,
            self.actual_edges,
            self.config.seed,
            self.config.repeats,
            self.available_parallelism,
            self.num_triangles,
            self.num_four_cliques,
            self.json_peel(),
            json_run(&self.baseline),
            runs.join(",\n")
        )
    }

    /// Human-readable table of the same measurements.
    pub fn format(&self) -> String {
        let mut rows = Vec::new();
        for run in std::iter::once(&self.baseline).chain(self.runs.iter()) {
            rows.push(vec![
                run.threads.to_string(),
                format!("{:.4}", run.timings.triangles_s),
                format!("{:.4}", run.timings.four_cliques_s),
                format!("{:.4}", run.timings.support_s),
                format!("{:.4}", run.timings.total_s()),
                format!("{:.2}x", run.speedup),
                if run.deadline_exceeded { "YES" } else { "no" }.to_string(),
            ]);
        }
        let source = match (&self.config.input, &self.ingest) {
            (Some(input), Some(t)) => format!(
                "\ningest: {} ({}, {}) — parse {:.3}s, snapshot write {:.3}s, \
                 reload {:.3}s ({:.1}x faster than parsing), \
                 mmap open {:.3}s ({:.1}x faster than the owned reload{})",
                input.path.display(),
                input.format,
                input.probability,
                t.parse_s,
                t.snapshot_write_s,
                t.snapshot_reload_s,
                t.reload_speedup(),
                t.snapshot_mmap_s,
                t.mmap_speedup(),
                if t.mmap_used { "" } else { "; owned fallback" }
            ),
            (Some(input), None) => format!(
                "\ningest: {} ({}, {})",
                input.path.display(),
                input.format,
                input.probability
            ),
            (None, _) => String::new(),
        };
        let peel = format!(
            "\npeel (theta {:.2}): dp_calls {} vs reference {} ({:.1}% saved), \
             {} skips, {} buckets, {} scratch bytes peak, max score {} — \
             {:.3}s vs {:.3}s",
            self.peel.theta,
            self.peel.stats.dp_calls,
            self.peel.reference_dp_calls,
            self.peel.dp_calls_saved_pct(),
            self.peel.stats.recompute_skips,
            self.peel.stats.buckets_touched,
            self.peel.stats.peak_scratch_bytes,
            self.peel.max_score,
            self.peel.peel_s,
            self.peel.reference_peel_s,
        );
        format!(
            "parallel substrate bench — {} vertices, {} edges (seed {}), \
             {} triangles, {} 4-cliques, host parallelism {}{}{}\n{}",
            self.actual_vertices,
            self.actual_edges,
            self.config.seed,
            self.num_triangles,
            self.num_four_cliques,
            self.available_parallelism,
            source,
            peel,
            format_table(
                &[
                    "threads",
                    "triangles_s",
                    "4cliques_s",
                    "support_s",
                    "total_s",
                    "speedup",
                    "overrun"
                ],
                &rows,
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ParBenchConfig {
        ParBenchConfig {
            vertices: 60,
            edges: 400,
            seed: 7,
            threads: vec![2],
            repeats: 1,
            deadline: Duration::from_secs(120),
            input: None,
        }
    }

    #[test]
    fn report_is_consistent() {
        let report = run(&tiny_config()).unwrap();
        assert!(report.actual_edges > 0);
        assert!(report.num_triangles > 0);
        assert_eq!(report.baseline.threads, 1);
        assert_eq!(report.baseline.speedup, 1.0);
        assert_eq!(report.runs.len(), 1);
        assert_eq!(report.runs[0].threads, 2);
        assert!(report.runs[0].speedup > 0.0);
        assert!(!report.baseline.deadline_exceeded);
    }

    #[test]
    fn json_has_schema_and_parses_shape() {
        let report = run(&tiny_config()).unwrap();
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"bench-parallel/v6\""));
        assert!(json.contains("\"kind\": \"generated\""));
        assert!(json.contains("\"counts\""));
        assert!(json.contains("\"peel\""));
        assert!(json.contains("\"baseline\""));
        assert!(json.contains("\"runs\""));
        // The report must parse with the crate's own JSON reader — the
        // bench-compare gate depends on it.
        let doc = crate::json::Json::parse(&json).expect("report JSON parses");
        assert_eq!(
            doc.path(&["counts", "triangles"])
                .and_then(crate::json::Json::as_f64),
            Some(report.num_triangles as f64)
        );
        assert_eq!(
            doc.path(&["peel", "dp_calls"])
                .and_then(crate::json::Json::as_f64),
            Some(report.peel.stats.dp_calls as f64)
        );
        assert_eq!(
            doc.path(&["peel", "peak_rss_bytes"])
                .and_then(crate::json::Json::as_f64),
            Some(report.peel.stats.peak_rss_bytes as f64)
        );
        assert_eq!(
            doc.path(&["peel", "reference_dp_calls"])
                .and_then(crate::json::Json::as_f64),
            Some(report.peel.reference_dp_calls as f64)
        );
    }

    #[test]
    fn peel_counters_are_deterministic_and_method_counts_sorted() {
        let a = run(&tiny_config()).unwrap();
        let b = run(&tiny_config()).unwrap();
        assert_eq!(a.peel.stats, b.peel.stats);
        assert_eq!(a.peel.reference_dp_calls, b.peel.reference_dp_calls);
        assert_eq!(a.peel.method_counts, b.peel.method_counts);
        // Exact-DP default: every triangle counted once, as DP.
        assert_eq!(
            a.peel.method_counts,
            vec![("DP".to_string(), a.num_triangles)]
        );
        let sorted = {
            let mut s = a.peel.method_counts.clone();
            s.sort();
            s
        };
        assert_eq!(a.peel.method_counts, sorted);
        // The deferred engine never does more work than the reference.
        assert!(a.peel.stats.dp_calls <= a.peel.reference_dp_calls);
        assert!(a.peel.dp_calls_saved_pct() >= 0.0);
    }

    #[test]
    fn table_lists_every_run() {
        let report = run(&tiny_config()).unwrap();
        let text = report.format();
        assert!(text.contains("threads"));
        assert!(text.contains("speedup"));
        // Header + separator + baseline + one run.
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn generated_graph_is_deterministic() {
        let a = generate_graph(50, 200, 3);
        let b = generate_graph(50, 200, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn input_mode_records_provenance_and_ingest_timings() {
        use ugraph::io::EdgeProbabilityModel;
        use ugraph::InputFormat;

        let dir = std::env::temp_dir().join("parbench_input_mode_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.txt");
        ugraph::io::write_edge_list_file(&generate_graph(60, 400, 7), &path).unwrap();

        let mut config = tiny_config();
        config.input = Some(nd_datasets::ExternalDataset::new(
            &path,
            InputFormat::Snap,
            EdgeProbabilityModel::Column,
        ));
        let report = run(&config).unwrap();
        let ingest = report.ingest.expect("input mode records ingest timings");
        assert!(ingest.parse_s > 0.0);
        assert!(ingest.snapshot_reload_s > 0.0);
        assert!(ingest.snapshot_mmap_s > 0.0);
        // Linux hosts must exercise the zero-copy path, not the fallback.
        if cfg!(target_os = "linux") {
            assert!(ingest.mmap_used, "mmap open fell back to the owned path");
        }
        // The measured graph is the file's, not the generator's.
        assert_eq!(report.actual_edges, 400);

        let json = report.to_json();
        assert!(json.contains("\"kind\": \"file\""));
        assert!(json.contains("\"format\": \"snap\""));
        assert!(json.contains("\"prob_model\": \"column\""));
        assert!(json.contains("\"reload_speedup\""));
        assert!(json.contains("\"mmap_speedup\""));
        assert!(json.contains("\"mmap_used\""));
        assert!(json.contains("\"schema\": \"bench-parallel/v6\""));
        assert!(report.format().contains("ingest:"));
        assert!(report.format().contains("peel (theta"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_inputs_skip_the_cache_round_trip() {
        use ugraph::io::EdgeProbabilityModel;
        use ugraph::InputFormat;

        let dir = std::env::temp_dir().join("parbench_snapshot_input_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.ugsnap");
        ugraph::io::write_snapshot_file(&generate_graph(60, 400, 7), &path).unwrap();

        let mut config = tiny_config();
        config.input = Some(nd_datasets::ExternalDataset::new(
            &path,
            InputFormat::Snapshot,
            EdgeProbabilityModel::Column,
        ));
        let report = run(&config).unwrap();
        assert!(report.ingest.is_none(), "no snapshot-vs-snapshot timing");
        assert_eq!(report.actual_edges, 400);
        // No second snapshot appears beside the source.
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            1,
            "dataset directory must not be littered"
        );
        // Provenance still records the file, without an ingest object.
        let json = report.to_json();
        assert!(json.contains("\"kind\": \"file\""));
        assert!(json.contains("\"format\": \"ugsnap\""));
        assert!(!json.contains("\"ingest\""), "{json}");
        assert!(report.format().contains("ingest: "));
        std::fs::remove_dir_all(&dir).ok();
    }
}
