//! Shared infrastructure for the experiment harness.

use std::time::{Duration, Instant};

use nd_datasets::{PaperDataset, Scale};
use ugraph::UncertainGraph;

/// Execution context shared by all experiments: dataset scale and seed.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentContext {
    /// Dataset scale (tiny for smoke runs, small for the recorded results,
    /// medium for longer benchmarking sessions).
    pub scale: Scale,
    /// Seed used for dataset generation and Monte-Carlo sampling.
    pub seed: u64,
}

impl ExperimentContext {
    /// Creates a context.
    pub fn new(scale: Scale, seed: u64) -> Self {
        ExperimentContext { scale, seed }
    }

    /// Generates a dataset under this context.
    pub fn dataset(&self, dataset: PaperDataset) -> UncertainGraph {
        dataset.generate(self.scale, self.seed)
    }
}

impl Default for ExperimentContext {
    fn default() -> Self {
        ExperimentContext::new(Scale::Small, 42)
    }
}

/// Wall-clock measurement of a closure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timing {
    /// Elapsed wall-clock time.
    pub elapsed: Duration,
}

impl Timing {
    /// Runs `f` once and measures it, returning the result and the timing.
    pub fn measure<T>(f: impl FnOnce() -> T) -> (T, Timing) {
        let start = Instant::now();
        let out = f();
        (
            out,
            Timing {
                elapsed: start.elapsed(),
            },
        )
    }

    /// Elapsed seconds as a float.
    pub fn seconds(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }
}

impl std::fmt::Display for Timing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}s", self.seconds())
    }
}

/// Formats a simple aligned table: a header row followed by data rows.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_generates_datasets() {
        let ctx = ExperimentContext::new(Scale::Tiny, 7);
        let g = ctx.dataset(PaperDataset::Krogan);
        assert!(g.num_edges() > 0);
        // Same context, same dataset.
        let g2 = ctx.dataset(PaperDataset::Krogan);
        assert_eq!(g, g2);
    }

    #[test]
    fn timing_measures_elapsed_time() {
        let (value, t) = Timing::measure(|| {
            std::thread::sleep(Duration::from_millis(10));
            42
        });
        assert_eq!(value, 42);
        assert!(t.seconds() >= 0.009);
        assert!(t.to_string().ends_with('s'));
    }

    #[test]
    fn table_formatting_aligns_columns() {
        let text = format_table(
            &["name", "value"],
            &[
                vec!["a".to_string(), "1".to_string()],
                vec!["long-name".to_string(), "23456".to_string()],
            ],
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1"));
        assert!(lines[3].contains("long-name"));
    }
}
