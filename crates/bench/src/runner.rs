//! Shared infrastructure for the experiment harness.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use nd_datasets::{PaperDataset, Scale};
use ugraph::UncertainGraph;

/// An ingested graph overriding the synthetic registry for one run.
#[derive(Debug)]
struct ExternalGraph {
    name: String,
    graph: UncertainGraph,
}

/// Execution context shared by all experiments: dataset scale and seed,
/// plus an optional ingested graph that overrides the synthetic registry
/// (the `--input` flag of the `experiments` CLI).
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// Dataset scale (tiny for smoke runs, small for the recorded results,
    /// medium for longer benchmarking sessions).
    pub scale: Scale,
    /// Seed used for dataset generation and Monte-Carlo sampling.
    pub seed: u64,
    external: Option<Arc<ExternalGraph>>,
}

impl ExperimentContext {
    /// Creates a context.
    pub fn new(scale: Scale, seed: u64) -> Self {
        ExperimentContext {
            scale,
            seed,
            external: None,
        }
    }

    /// Returns a context whose [`ExperimentContext::dataset`] always
    /// yields the given ingested graph, labelled `name` in every table.
    pub fn with_external_graph(mut self, name: impl Into<String>, graph: UncertainGraph) -> Self {
        self.external = Some(Arc::new(ExternalGraph {
            name: name.into(),
            graph,
        }));
        self
    }

    /// `true` when an ingested graph overrides the synthetic registry.
    pub fn is_external(&self) -> bool {
        self.external.is_some()
    }

    /// Generates a dataset under this context — or, when an external graph
    /// is installed, returns that graph regardless of `dataset`.
    pub fn dataset(&self, dataset: PaperDataset) -> UncertainGraph {
        match &self.external {
            Some(ext) => ext.graph.clone(),
            None => dataset.generate(self.scale, self.seed),
        }
    }

    /// Label for `dataset` in tables and figures: the external graph's
    /// name when one is installed, the paper name otherwise.
    pub fn dataset_name(&self, dataset: PaperDataset) -> String {
        match &self.external {
            Some(ext) => ext.name.clone(),
            None => dataset.name().to_string(),
        }
    }

    /// The dataset list a multi-dataset experiment should iterate: the
    /// requested paper datasets, collapsed to a single placeholder when an
    /// external graph overrides them all anyway.
    pub fn effective_datasets(&self, requested: &[PaperDataset]) -> Vec<PaperDataset> {
        if self.is_external() {
            requested.iter().take(1).copied().collect()
        } else {
            requested.to_vec()
        }
    }
}

impl Default for ExperimentContext {
    fn default() -> Self {
        ExperimentContext::new(Scale::Small, 42)
    }
}

/// Wall-clock measurement of a closure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timing {
    /// Elapsed wall-clock time.
    pub elapsed: Duration,
}

impl Timing {
    /// Runs `f` once and measures it, returning the result and the timing.
    pub fn measure<T>(f: impl FnOnce() -> T) -> (T, Timing) {
        let start = Instant::now();
        let out = f();
        (
            out,
            Timing {
                elapsed: start.elapsed(),
            },
        )
    }

    /// Elapsed seconds as a float.
    pub fn seconds(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }
}

impl std::fmt::Display for Timing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}s", self.seconds())
    }
}

/// Runs `f` on the calling thread while a watchdog thread blocks on a
/// condition variable (no sleep-polling): the watchdog wakes either when
/// `f` finishes — signalled immediately via [`Condvar::notify_all`] — or
/// when `deadline` elapses.  Returns the result, its timing, and whether
/// the deadline elapsed before completion.
///
/// The workload is never interrupted; an exceeded deadline is only
/// *reported*, so callers (e.g. the parallel bench runner) can flag
/// pathological runs in their output instead of silently blocking CI.
pub fn run_with_deadline<T, F: FnOnce() -> T>(deadline: Duration, f: F) -> (T, Timing, bool) {
    let signal = (Mutex::new(false), Condvar::new());
    std::thread::scope(|scope| {
        let watchdog = scope.spawn(|| {
            let (lock, cvar) = (&signal.0, &signal.1);
            let start = Instant::now();
            let mut done = lock.lock().expect("watchdog lock");
            while !*done {
                let remaining = match deadline.checked_sub(start.elapsed()) {
                    Some(d) => d,
                    None => return true, // deadline elapsed first
                };
                done = cvar.wait_timeout(done, remaining).expect("watchdog wait").0;
            }
            false
        });
        // Completion is signalled from a drop guard so the watchdog wakes
        // even when `f` panics — otherwise the scope would block on the
        // watchdog for the full remaining deadline before propagating.
        struct SignalDone<'a>(&'a (Mutex<bool>, Condvar));
        impl Drop for SignalDone<'_> {
            fn drop(&mut self) {
                let mut done = self.0 .0.lock().expect("completion lock");
                *done = true;
                self.0 .1.notify_all();
            }
        }
        let (out, timing) = {
            let _guard = SignalDone(&signal);
            Timing::measure(f)
        };
        let exceeded = watchdog.join().expect("watchdog thread");
        (out, timing, exceeded)
    })
}

/// Formats a simple aligned table: a header row followed by data rows.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_generates_datasets() {
        let ctx = ExperimentContext::new(Scale::Tiny, 7);
        let g = ctx.dataset(PaperDataset::Krogan);
        assert!(g.num_edges() > 0);
        // Same context, same dataset.
        let g2 = ctx.dataset(PaperDataset::Krogan);
        assert_eq!(g, g2);
        assert!(!ctx.is_external());
        assert_eq!(ctx.dataset_name(PaperDataset::Krogan), "krogan");
        assert_eq!(ctx.effective_datasets(&PaperDataset::all()).len(), 6);
    }

    #[test]
    fn external_graph_overrides_every_dataset() {
        let mut b = ugraph::GraphBuilder::new();
        b.add_edge(0, 1, 0.5).unwrap();
        let g = b.build();
        let ctx = ExperimentContext::new(Scale::Tiny, 7).with_external_graph("mygraph", g.clone());
        assert!(ctx.is_external());
        for ds in PaperDataset::all() {
            assert_eq!(ctx.dataset(ds), g);
            assert_eq!(ctx.dataset_name(ds), "mygraph");
        }
        assert_eq!(ctx.effective_datasets(&PaperDataset::all()).len(), 1);
        assert!(ctx.effective_datasets(&[]).is_empty());
    }

    #[test]
    fn timing_measures_elapsed_time() {
        let (value, t) = Timing::measure(|| {
            // A timed blocking wait on a channel that never delivers — not
            // a sleep-poll — keeps the workload deterministic in duration.
            let (_tx, rx) = std::sync::mpsc::channel::<()>();
            let _ = rx.recv_timeout(Duration::from_millis(10));
            42
        });
        assert_eq!(value, 42);
        assert!(t.seconds() >= 0.009);
        assert!(t.to_string().ends_with('s'));
    }

    #[test]
    fn deadline_not_exceeded_for_fast_work() {
        let (value, t, exceeded) = run_with_deadline(Duration::from_secs(30), || 7 * 6);
        assert_eq!(value, 42);
        assert!(!exceeded);
        assert!(t.seconds() < 30.0);
    }

    #[test]
    fn deadline_exceeded_is_reported() {
        let (value, _t, exceeded) = run_with_deadline(Duration::from_millis(5), || {
            let (_tx, rx) = std::sync::mpsc::channel::<()>();
            let _ = rx.recv_timeout(Duration::from_millis(50));
            "done"
        });
        // The workload still completes; the overrun is only flagged.
        assert_eq!(value, "done");
        assert!(exceeded);
    }

    #[test]
    fn workload_panic_releases_the_watchdog_immediately() {
        let start = Instant::now();
        let result = std::panic::catch_unwind(|| {
            run_with_deadline(Duration::from_secs(60), || panic!("workload failed"))
        });
        assert!(result.is_err());
        // The panic must propagate right away, not after the 60s deadline.
        assert!(start.elapsed() < Duration::from_secs(10));
    }

    #[test]
    fn table_formatting_aligns_columns() {
        let text = format_table(
            &["name", "value"],
            &[
                vec!["a".to_string(), "1".to_string()],
                vec!["long-name".to_string(), "23456".to_string()],
            ],
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1"));
        assert!(lines[3].contains("long-name"));
    }
}
