//! Registry-driven runs are bit-identical to direct driver invocations.
//!
//! The `experiments` subcommands now route through
//! `nd_bench::registry::run`; these tests pin that the rewiring added
//! nothing.  For each workload a scenario spec is parsed from TOML and
//! executed through the registry, a config is built by hand exactly the
//! way the old flag plumbing did, and the two JSON reports must agree
//! on every deterministic field — walls, RSS probes and derived timing
//! figures are the only keys excluded, because two honest runs of the
//! same work differ there.
//!
//! Covered: parbench, thetasweep at all three ranks, and updates.

use nd_bench::json::Json;
use nd_bench::registry::run;
use nd_bench::registry::spec;
use nd_bench::{parbench, thetasweep, updates};
use nucleus::Rank;

/// Keys whose values are measurements of the run rather than of the
/// input: wall clocks (`*_s`), RSS probes, and figures derived from
/// walls.  Everything else must match bit-for-bit.
fn nondeterministic(key: &str) -> bool {
    key.ends_with("_s")
        || key.contains("rss")
        || key.contains("speedup")
        || key == "dp_calls_saved_pct"
        || key == "amortization"
        || key == "deadline_exceeded"
}

/// Recursively asserts the two reports agree everywhere outside the
/// measurement keys.  Object key *sets* must match exactly — a field
/// added or dropped by the registry path is a failure even if it is a
/// wall clock.
fn assert_same_report(a: &Json, b: &Json, path: &str) {
    match (a, b) {
        (Json::Obj(xs), Json::Obj(ys)) => {
            let keys = |m: &[(String, Json)]| -> Vec<String> {
                m.iter().map(|(k, _)| k.clone()).collect()
            };
            assert_eq!(keys(xs), keys(ys), "object keys diverge at '{path}'");
            for ((k, x), (_, y)) in xs.iter().zip(ys) {
                if nondeterministic(k) {
                    continue;
                }
                assert_same_report(x, y, &format!("{path}.{k}"));
            }
        }
        (Json::Arr(xs), Json::Arr(ys)) => {
            assert_eq!(xs.len(), ys.len(), "array lengths diverge at '{path}'");
            for (i, (x, y)) in xs.iter().zip(ys).enumerate() {
                assert_same_report(x, y, &format!("{path}[{i}]"));
            }
        }
        _ => assert_eq!(a, b, "values diverge at '{path}'"),
    }
}

fn registry_report(toml: &str) -> Json {
    let parsed = spec::parse(toml).expect("differential spec must parse");
    let executed = run::execute(&parsed.spec).expect("registry execution failed");
    assert!(
        executed.failures.is_empty(),
        "registry run failed its own expectations: {:?}",
        executed.failures
    );
    let raw = executed.raw_json.expect("bench workloads carry raw JSON");
    Json::parse(&raw).expect("driver JSON must parse")
}

/// Small enough for debug-mode CI, big enough that every counter the
/// reports carry is nonzero: 1000 edges over 100 vertices.
const DIMS: &str = "kind = \"generated\"\nedges = 1000\nvertices = 100\nseed = 42\n";

#[test]
fn parbench_matches_direct_invocation() {
    let toml = format!(
        "name = \"diff-parbench\"\nworkload = \"parbench\"\n\n\
         [dataset]\n{DIMS}\n\
         [params]\nrepeats = 1\nthreads = [2]\n"
    );
    let config = parbench::ParBenchConfig {
        vertices: 100,
        edges: 1000,
        seed: 42,
        threads: vec![2],
        repeats: 1,
        ..Default::default()
    };
    let direct = parbench::run(&config).expect("direct parbench run failed");
    let direct = Json::parse(&direct.to_json()).unwrap();
    assert_same_report(&registry_report(&toml), &direct, "parbench");
}

#[test]
fn thetasweep_matches_direct_invocation_at_every_rank() {
    for rank in [Rank::Core, Rank::Truss, Rank::Nucleus] {
        let toml = format!(
            "name = \"diff-thetasweep\"\nworkload = \"thetasweep\"\n\n\
             [dataset]\n{DIMS}\n\
             [params]\nrank = \"{rank}\"\nthetas = [0.05, 0.1, 0.3]\nrepeats = 1\n"
        );
        let config = thetasweep::SweepBenchConfig {
            rank,
            vertices: 100,
            edges: 1000,
            seed: 42,
            thetas: vec![0.05, 0.1, 0.3],
            repeats: 1,
            ..Default::default()
        };
        let direct = thetasweep::run_bench(&config).expect("direct thetasweep run failed");
        let direct = Json::parse(&direct.to_json()).unwrap();
        assert_same_report(
            &registry_report(&toml),
            &direct,
            &format!("thetasweep/{rank}"),
        );
    }
}

#[test]
fn updates_matches_direct_invocation() {
    let toml = format!(
        "name = \"diff-updates\"\nworkload = \"updates\"\n\n\
         [dataset]\n{DIMS}\n\
         [params]\nrank = \"truss\"\nthetas = [0.05, 0.1, 0.3]\nbatch = 8\n"
    );
    let config = updates::UpdateBenchConfig {
        rank: Rank::Truss,
        vertices: 100,
        edges: 1000,
        seed: 42,
        thetas: vec![0.05, 0.1, 0.3],
        batch: 8,
        ..Default::default()
    };
    let direct = updates::run(&config).expect("direct updates run failed");
    let direct = Json::parse(&direct.to_json()).unwrap();
    assert_same_report(&registry_report(&toml), &direct, "updates");
}
