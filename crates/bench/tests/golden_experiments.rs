//! Golden regression snapshots of the experiment drivers.
//!
//! Every table and figure driver runs at the pinned context
//! (`Scale::Small`, seed 42) and its deterministic output is compared
//! byte-for-byte against a committed expectation under `tests/golden/`.
//! Future performance refactors (parallel peeling, snapshot caches, new
//! enumeration orders) therefore cannot silently change any result the
//! paper reproduction reports.
//!
//! Two kinds of snapshot:
//!
//! * tables/figures whose `format()` output is fully deterministic
//!   (table1, table2, table3, fig6, fig7, fig8) are pinned verbatim;
//! * fig4/fig5 print wall-clock timings, so their *deterministic
//!   projection* (datasets, thresholds, scores, nucleus counts) is pinned
//!   instead.
//!
//! The heavyweight drivers (table3, fig5, fig8 — global decompositions
//! with Monte-Carlo sampling) are `#[ignore]`d here and executed by the
//! `test-thorough` CI job in release mode.
//!
//! To regenerate after an *intentional* change:
//! `UPDATE_GOLDEN=1 cargo test --release -p nd-bench --test golden_experiments -- --include-ignored`

use nd_bench::runner::ExperimentContext;
use nd_bench::{fig4, fig5, fig6, fig7, fig8, table1, table2, table3, thetasweep};
use nd_datasets::{PaperDataset, Scale};
use std::fmt::Write as _;
use std::path::PathBuf;

fn ctx() -> ExperimentContext {
    ExperimentContext::new(Scale::Small, 42)
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("updated golden snapshot {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "\n=== {name} deviates from its golden snapshot ===\n\
         If this change is intentional, regenerate with:\n\
         UPDATE_GOLDEN=1 cargo test --release -p nd-bench --test golden_experiments -- --include-ignored\n"
    );
}

#[test]
fn golden_table1() {
    check_golden(
        "table1_small_seed42",
        &table1::run(&ctx(), &PaperDataset::all()).format(),
    );
}

#[test]
fn golden_table2() {
    let t = table2::run(&ctx(), &PaperDataset::all());
    assert!(t.check_shape().is_empty(), "{:?}", t.check_shape());
    check_golden("table2_small_seed42", &t.format());
}

#[test]
#[ignore = "heavy (truss/core baselines over 3 small datasets); run by the test-thorough CI job"]
fn golden_table3() {
    let t = table3::run(
        &ctx(),
        &[
            PaperDataset::Dblp,
            PaperDataset::Pokec,
            PaperDataset::Biomine,
        ],
    );
    check_golden("table3_small_seed42", &t.format());
}

#[test]
fn golden_fig4_scores() {
    // fig4's table prints timings; pin the deterministic projection:
    // per (dataset, θ), the DP and AP maximum nucleus scores.
    let fig = fig4::run(&ctx(), &[PaperDataset::Krogan, PaperDataset::Dblp]);
    let mut digest = String::from("fig4 deterministic projection: dataset theta kmax_dp kmax_ap\n");
    for p in &fig.points {
        writeln!(
            digest,
            "{} {:.1} {} {}",
            p.dataset, p.theta, p.max_score_dp, p.max_score_ap
        )
        .unwrap();
    }
    check_golden("fig4_scores_small_seed42", &digest);
}

#[test]
#[ignore = "heavy (global + weakly-global with 200 samples); run by the test-thorough CI job"]
fn golden_fig5_nucleus_counts() {
    // fig5's table prints timings; pin the nucleus counts instead.
    let fig = fig5::run(
        &ctx(),
        &[PaperDataset::Krogan, PaperDataset::Flickr],
        2,
        200,
    );
    let mut digest = String::from("fig5 deterministic projection: dataset k fg_nuclei wg_nuclei\n");
    for p in &fig.points {
        writeln!(
            digest,
            "{} {} {} {}",
            p.dataset, p.k, p.fg_nuclei, p.wg_nuclei
        )
        .unwrap();
    }
    check_golden("fig5_counts_small_seed42", &digest);
}

#[test]
fn golden_fig6() {
    check_golden("fig6_seed42", &fig6::run(&ctx(), fig6::SAMPLES).format());
}

#[test]
fn golden_fig7() {
    check_golden(
        "fig7_small_seed42",
        &fig7::run(&ctx(), PaperDataset::Flickr).format(),
    );
}

#[test]
fn golden_thetasweep() {
    // The sweep table is fully deterministic (counters only, no wall
    // times) and run_table re-verifies every grid point against an
    // independent decomposition before reporting.
    let t = thetasweep::run_table(
        &ctx(),
        &[PaperDataset::Krogan, PaperDataset::Dblp],
        &[0.05, 0.1, 0.3, 0.6],
    );
    check_golden("thetasweep_small_seed42", &t.format());
}

#[test]
#[ignore = "heavy (sweep + per-theta verification over all six datasets); run by the test-thorough CI job"]
fn golden_thetasweep_all_datasets() {
    let t = thetasweep::run_table(
        &ctx(),
        &PaperDataset::all(),
        &[0.02, 0.05, 0.1, 0.2, 0.4, 0.8],
    );
    check_golden("thetasweep_all_small_seed42", &t.format());
}

#[test]
#[ignore = "heavy (three decomposition modes over k sweep); run by the test-thorough CI job"]
fn golden_fig8() {
    let fig = fig8::run(
        &ctx(),
        &[
            PaperDataset::Krogan,
            PaperDataset::Flickr,
            PaperDataset::Dblp,
        ],
        3,
        200,
    );
    check_golden("fig8_small_seed42", &fig.format());
}

#[test]
fn golden_matrix_dry_run() {
    // The scenario listing is the registry's public face: builtin
    // scenarios plus the committed `scenarios/*.toml` files, in name
    // order.  Pinning it makes adding/renaming a scenario a reviewed,
    // visible diff.  Origins print as bare file names, so the snapshot
    // is independent of where the checkout lives.
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["matrix", "--dry-run"])
        .output()
        .expect("experiments binary runs");
    assert!(
        output.status.success(),
        "matrix --dry-run failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    check_golden("matrix_dry_run", &String::from_utf8_lossy(&output.stdout));
}
