//! Property tests for the scenario spec format.
//!
//! Two contracts under test:
//!
//! * **The canonical form is a fixpoint.**  For any valid [`Spec`],
//!   `parse(spec.to_toml())` reproduces the spec exactly and
//!   re-serializes to the byte-identical text — so committed scenario
//!   files never drift under rewrite tooling.
//! * **Malformed text points at itself.**  Injecting a defect at a
//!   known line of an otherwise-valid spec surfaces the matching typed
//!   [`SpecError`] carrying exactly that 1-based line number.
//!
//! Random specs come from a seeded splitmix generator rather than
//! nested strategies: one drawn `u64` deterministically expands into a
//! workload, a compatible dataset, the workload's allowed params, and
//! a sorted expectation set — keeping every generated spec valid by
//! construction.

use proptest::prelude::*;

use nd_bench::compare::Gate;
use nd_bench::registry::spec::{self, DatasetSpec, Expectation, Params, Spec, SpecError, Workload};
use nd_datasets::Scale;
use nucleus::Rank;
use ugraph::io::EdgeProbabilityModel;
use ugraph::InputFormat;

/// Splitmix64: expands one seed into an arbitrary stream of draws.
struct Bits(u64);

impl Bits {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.next() % 100 < pct
    }
}

fn file_dataset(b: &mut Bits) -> DatasetSpec {
    // Paths exercise the string escaper: spaces, quotes, backslashes.
    const PATHS: &[&str] = &[
        "data/tiny.txt",
        "graphs/web.konect",
        "odd name \"quoted\"\\slash.txt",
        "snapshots/web.ugsnap",
    ];
    let path = PATHS[b.pick(PATHS.len())].to_string();
    let format = [
        InputFormat::Snap,
        InputFormat::Konect,
        InputFormat::Snapshot,
    ][b.pick(3)];
    let prob_model = match b.pick(4) {
        0 => EdgeProbabilityModel::Column,
        1 => EdgeProbabilityModel::Constant(0.9),
        2 => EdgeProbabilityModel::UniformSeeded {
            seed: b.next() % 1000,
            low: 0.5,
            high: 1.0,
        },
        _ => EdgeProbabilityModel::ExponentialWeight { scale: 2.5 },
    };
    DatasetSpec::File {
        path,
        format,
        prob_model,
    }
}

fn theta_grid(b: &mut Bits) -> Vec<f64> {
    // A non-empty subset of an increasing grid is strictly increasing.
    const GRID: &[f64] = &[0.05, 0.1, 0.2, 0.25, 0.3, 0.5, 0.75, 0.9, 1.0];
    let mut out = Vec::new();
    for &t in GRID {
        if b.chance(40) {
            out.push(t);
        }
    }
    if out.len() < 2 {
        out = vec![0.1, 0.5];
    }
    out
}

/// Deterministically expands `seed` into a valid spec: the dataset kind
/// matches the workload, params stay within the workload's allowed
/// keys, and expectations are unique and sorted by path.
fn build_spec(seed: u64) -> Spec {
    let mut b = Bits(seed);
    let workload = Workload::ALL[b.pick(Workload::ALL.len())];

    const NAME_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789._-";
    let len = 1 + b.pick(12);
    let name: String = (0..len)
        .map(|_| NAME_CHARS[b.pick(NAME_CHARS.len())] as char)
        .collect();

    const TAGS: &[&str] = &["bench", "paper", "smoke", "sweep", "nightly"];
    let mut tags = Vec::new();
    for t in TAGS {
        if b.chance(30) {
            tags.push(t.to_string());
        }
    }

    let tolerance = if b.chance(25) {
        [0.05, 0.125, 0.5, 1.0][b.pick(4)]
    } else {
        0.0
    };

    let dataset = match workload {
        Workload::Million => DatasetSpec::Ba {
            vertices: 100 + b.pick(10_000),
            attach: 1 + b.pick(8),
            seed: b.next() % 1_000_000,
        },
        Workload::Parbench | Workload::Thetasweep | Workload::Updates | Workload::Serve => {
            if b.chance(50) {
                DatasetSpec::Generated {
                    edges: 100 + b.pick(100_000),
                    vertices: if b.chance(50) {
                        Some(10 + b.pick(5000))
                    } else {
                        None
                    },
                    seed: b.next() % 1_000_000,
                }
            } else {
                file_dataset(&mut b)
            }
        }
        _ => {
            if b.chance(50) {
                DatasetSpec::Paper {
                    scale: [Scale::Tiny, Scale::Small, Scale::Medium][b.pick(3)],
                    seed: b.next() % 1_000_000,
                }
            } else {
                file_dataset(&mut b)
            }
        }
    };

    let rank = |b: &mut Bits| [Rank::Core, Rank::Truss, Rank::Nucleus][b.pick(3)];
    let mut params = Params::default();
    match workload {
        Workload::Parbench => {
            if b.chance(60) {
                params.repeats = Some(1 + b.pick(5));
            }
            if b.chance(60) {
                let n = 1 + b.pick(3);
                params.threads = Some((0..n).map(|_| 1 + b.pick(8)).collect());
            }
        }
        Workload::Thetasweep => {
            if b.chance(60) {
                params.rank = Some(rank(&mut b));
            }
            if b.chance(60) {
                params.thetas = Some(theta_grid(&mut b));
            }
            if b.chance(60) {
                params.repeats = Some(1 + b.pick(5));
            }
        }
        Workload::Updates => {
            if b.chance(60) {
                params.rank = Some(rank(&mut b));
            }
            if b.chance(60) {
                params.thetas = Some(theta_grid(&mut b));
            }
            if b.chance(60) {
                params.batch = Some(1 + b.pick(64));
            }
        }
        Workload::Serve => {
            if b.chance(60) {
                params.thetas = Some(theta_grid(&mut b));
            }
            if b.chance(60) {
                params.cache = Some(b.pick(128));
            }
            if b.chance(60) {
                params.pool = Some(1 + b.pick(8));
            }
        }
        Workload::Million => {
            if b.chance(60) {
                params.thetas = Some(theta_grid(&mut b));
            }
            if b.chance(60) {
                params.pool = Some(1 + b.pick(8));
            }
            if b.chance(60) {
                params.chunk_edges = Some(1 + b.pick(100_000));
            }
        }
        _ => {}
    }

    // Already alphabetical, so iterating keeps `expect` sorted by path.
    const COUNTERS: &[&str] = &[
        "counts.triangles",
        "edges",
        "rows",
        "stats.requests",
        "sweep.support_builds",
        "vertices",
    ];
    let mut expect = Vec::new();
    for path in COUNTERS {
        if b.chance(30) {
            let value = [0.0, 1.0, 21.0, 0.5, 400.0, 20780.0][b.pick(6)];
            let gate = match b.pick(5) {
                0 => Gate::Exact,
                1 => Gate::LowerIsBetter,
                2 => Gate::HigherIsBetter,
                3 => Gate::WithinFactor(2),
                _ => Gate::ReportOnly,
            };
            expect.push(Expectation {
                path: path.to_string(),
                value,
                gate,
            });
        }
    }

    Spec {
        name,
        workload,
        tags,
        tolerance,
        dataset,
        params,
        expect,
    }
}

proptest! {
    /// parse ∘ to_toml is the identity on specs, and to_toml ∘ parse is
    /// the identity on canonical text.
    #[test]
    fn canonical_form_round_trips(seed in 0u64..u64::MAX) {
        let spec = build_spec(seed);
        let toml = spec.to_toml();
        let parsed = match spec::parse(&toml) {
            Ok(parsed) => parsed,
            Err(e) => panic!("canonical form failed to parse: {e}\n{toml}"),
        };
        prop_assert_eq!(&parsed.spec, &spec);
        prop_assert_eq!(parsed.spec.to_toml(), toml);
    }

    /// A line that is neither a section header nor `key = value` is a
    /// syntax error on exactly the line it sits on.
    #[test]
    fn garbage_line_is_a_syntax_error_on_its_line(seed in 0u64..u64::MAX) {
        let toml = build_spec(seed).to_toml();
        let line = toml.lines().count() + 1;
        match spec::parse(&format!("{toml}??? no equals sign\n")) {
            Err(SpecError::Syntax { line: got, .. }) => prop_assert_eq!(got, line),
            other => panic!("expected a syntax error on line {line}, got {other:?}"),
        }
    }

    /// An unrecognized `[section]` header is rejected at its own line
    /// with the header's name.
    #[test]
    fn unknown_section_points_at_its_line(seed in 0u64..u64::MAX) {
        let toml = build_spec(seed).to_toml();
        let line = toml.lines().count() + 1;
        prop_assert_eq!(
            spec::parse(&format!("{toml}[bogus]\n")).unwrap_err(),
            SpecError::UnknownSection { line, name: "bogus".to_string() }
        );
    }

    /// The canonical form always carries `workload` on line 2;
    /// corrupting its value is reported there.
    #[test]
    fn unknown_workload_points_at_its_line(seed in 0u64..u64::MAX) {
        let toml = build_spec(seed).to_toml();
        let mut lines: Vec<&str> = toml.lines().collect();
        prop_assert!(lines[1].starts_with("workload = "));
        lines[1] = "workload = \"frobnicate\"";
        prop_assert_eq!(
            spec::parse(&(lines.join("\n") + "\n")).unwrap_err(),
            SpecError::UnknownWorkload { line: 2, value: "frobnicate".to_string() }
        );
    }

    /// Repeating the `name` key is flagged at the second occurrence,
    /// attributed to the top-level section.
    #[test]
    fn duplicate_key_points_at_the_second_occurrence(seed in 0u64..u64::MAX) {
        let toml = build_spec(seed).to_toml();
        let mut lines: Vec<&str> = toml.lines().collect();
        prop_assert!(lines[0].starts_with("name = "));
        lines.insert(1, lines[0]);
        prop_assert_eq!(
            spec::parse(&(lines.join("\n") + "\n")).unwrap_err(),
            SpecError::DuplicateKey {
                line: 2,
                key: "name".to_string(),
                section: "top".to_string(),
            }
        );
    }

    /// An out-of-range tolerance carries its line and offending value.
    #[test]
    fn tolerance_out_of_range_points_at_its_line(seed in 0u64..u64::MAX) {
        let mut spec = build_spec(seed);
        spec.tolerance = 0.0; // canonical form omits it; no duplicate key
        let toml = spec.to_toml();
        let mut lines: Vec<&str> = toml.lines().collect();
        lines.insert(2, "tolerance = 7");
        prop_assert_eq!(
            spec::parse(&(lines.join("\n") + "\n")).unwrap_err(),
            SpecError::ToleranceOutOfRange { line: 3, value: 7.0 }
        );
    }
}
