//! Every `experiments` subcommand that takes `--input` must report a
//! missing or unreadable file the same way: one `cannot load <path>: …`
//! line on stderr and a non-zero exit — no panics, no backtraces, no
//! subcommand-specific wording.  One malformed invocation per
//! subcommand, driven through the real binary.

use std::process::Command;

const MISSING: &str = "/nonexistent/cli_errors_test_graph.txt";

/// Runs the experiments binary with `args`, asserting exit code 1 and
/// the unified error line (and that no panic leaked to stderr).
fn assert_unified_input_error(args: &[&str]) {
    let output = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .output()
        .expect("experiments binary runs");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(
        output.status.code(),
        Some(1),
        "{args:?} must exit 1, got {:?}\nstderr: {stderr}",
        output.status.code()
    );
    assert!(
        stderr.contains(&format!("cannot load {MISSING}:")),
        "{args:?} must report the unified message, got: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "{args:?} must fail cleanly, not panic: {stderr}"
    );
}

#[test]
fn generic_experiment_reports_missing_input_uniformly() {
    assert_unified_input_error(&["table1", "--scale", "tiny", "--input", MISSING]);
}

#[test]
fn parbench_reports_missing_input_uniformly() {
    assert_unified_input_error(&["parbench", "--repeats", "1", "--input", MISSING]);
}

#[test]
fn thetasweep_reports_missing_input_uniformly() {
    assert_unified_input_error(&["thetasweep", "--repeats", "1", "--input", MISSING]);
}

#[test]
fn serve_oneshot_reports_missing_input_uniformly() {
    let out = std::env::temp_dir().join("cli_errors_serve_out.json");
    assert_unified_input_error(&[
        "serve",
        "--oneshot",
        "--input",
        MISSING,
        "--out",
        out.to_str().unwrap(),
    ]);
    assert!(!out.exists(), "a failed run must not write a report");
}

#[test]
fn serve_resident_reports_missing_input_uniformly() {
    assert_unified_input_error(&["serve", "--input", MISSING]);
}

#[test]
fn matrix_reports_unknown_scenario_selection() {
    let output = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["matrix", "--only", "no-such-scenario", "--dry-run"])
        .output()
        .expect("experiments binary runs");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(
        output.status.code(),
        Some(1),
        "unknown --only must exit 1, got {:?}\nstderr: {stderr}",
        output.status.code()
    );
    assert!(
        stderr.contains("matrix: unknown scenario 'no-such-scenario'"),
        "must name the unknown scenario, got: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "must fail cleanly, not panic: {stderr}"
    );
}
