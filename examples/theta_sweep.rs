//! θ-sweep index: answer (θ, k)-nucleus queries for a whole grid of
//! thresholds from one support-structure build.
//!
//! The support structure (triangles, 4-cliques, completion
//! probabilities) does not depend on θ, so sweeping thresholds through
//! `ThetaSweep` pays that dominant cost once, while every per-θ result
//! stays bit-identical to an independent decomposition at that θ.
//!
//! Run with: `cargo run --example theta_sweep`

use prob_nucleus_repro::nucleus::{
    LocalConfig, LocalNucleusDecomposition, SweepConfig, ThetaSweep,
};
use prob_nucleus_repro::ugraph::GraphBuilder;

fn main() {
    // Two probable 5-cliques sharing a bridge — communities whose
    // cohesion degrades differently as the threshold tightens.
    let mut builder = GraphBuilder::new();
    for u in 0..5u32 {
        for v in (u + 1)..5u32 {
            builder.add_edge(u, v, 0.9).unwrap();
        }
    }
    for u in 5..10u32 {
        for v in (u + 1)..10u32 {
            builder.add_edge(u, v, 0.6).unwrap();
        }
    }
    builder.add_edge(4, 5, 0.3).unwrap();
    let graph = builder.build();

    // One build, five thresholds.  The grid must be sorted, distinct and
    // inside (0, 1] — malformed grids fail with a typed error.
    let grid = vec![0.02, 0.1, 0.3, 0.5, 0.8];
    let index = ThetaSweep::compute(&graph, &SweepConfig::exact(grid.clone()))
        .expect("valid sweep configuration");
    println!(
        "index over {} grid points, {} triangles, support built {} time(s)",
        index.grid_len(),
        index.num_triangles(),
        index.support_builds()
    );

    // Any (θ, k) on the grid is now an O(log grid) lookup plus a pure
    // extraction — no enumeration, no rescoring.
    for &theta in &grid {
        let kmax = index.max_score_at(theta).expect("grid point");
        let nuclei = index.k_nuclei_at(&graph, theta, 1).expect("grid point");
        println!(
            "theta {theta:.2}: max nucleusness {kmax}, {} l-(1,theta)-nuclei",
            nuclei.len()
        );
    }

    // Scores are monotone: tightening θ can only lower a triangle's
    // nucleusness, so each row of the index is sorted non-increasing.
    let tri = index.triangle_index().triangle(0);
    println!(
        "scores of triangle {tri} across the grid: {:?}",
        index.scores_across_grid(&tri).expect("triangle exists")
    );
    assert!(index.is_monotone_in_theta());

    // The index is bit-identical to an independent run at any grid θ.
    let solo = LocalNucleusDecomposition::compute(&graph, &LocalConfig::exact(0.3))
        .expect("valid configuration");
    assert_eq!(index.scores_at(0.3).unwrap(), solo.scores());
    println!("verified: sweep scores at theta 0.3 == independent decomposition");
}
