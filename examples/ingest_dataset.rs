//! Ingest a real-world edge list, cache it as a `.ugsnap` snapshot, and
//! run the local nucleus decomposition on it.
//!
//! Run with: `cargo run --example ingest_dataset`
//!
//! The example writes a small Konect-style TSV to a temp directory (in a
//! real workflow this is the downloaded dataset), ingests it with the
//! exponential weight→probability model the paper uses for DBLP, and
//! shows the snapshot cache kicking in on the second load.

use std::time::Instant;

use prob_nucleus_repro::nd_datasets::ExternalDataset;
use prob_nucleus_repro::nucleus::{LocalConfig, LocalNucleusDecomposition};
use prob_nucleus_repro::ugraph::io::EdgeProbabilityModel;
use prob_nucleus_repro::ugraph::InputFormat;

fn main() {
    let dir = std::env::temp_dir().join("nd_ingest_example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("collab.tsv");

    // A toy co-authorship network: `u v weight` rows where the weight is
    // the number of joint papers; repeated rows accumulate.
    let mut tsv = String::from("% toy co-authorship network\n");
    for (u, v, w) in [
        (0, 1, 6),
        (0, 2, 5),
        (1, 2, 7),
        (0, 3, 4),
        (1, 3, 3),
        (2, 3, 5),
        (3, 4, 1),
        (4, 5, 2),
        (4, 6, 2),
        (5, 6, 3),
    ] {
        tsv.push_str(&format!("{u}\t{v}\t{w}\n"));
    }
    std::fs::write(&path, tsv).expect("write dataset");

    let dataset = ExternalDataset::new(
        &path,
        InputFormat::Konect,
        EdgeProbabilityModel::ExponentialWeight { scale: 5.0 },
    );

    // First load parses the TSV and writes the snapshot cache…
    let t = Instant::now();
    let graph = dataset.load_cached().expect("ingest dataset");
    println!(
        "parsed {}: {} vertices, {} edges in {:?}",
        dataset.name,
        graph.num_vertices(),
        graph.num_edges(),
        t.elapsed()
    );
    println!(
        "snapshot cache: {}",
        dataset.snapshot_cache_path().display()
    );

    // …the second load reads the snapshot instead.
    let t = Instant::now();
    let again = dataset.load_cached().expect("reload from snapshot");
    assert_eq!(graph, again);
    println!("reloaded from snapshot in {:?}", t.elapsed());

    // The ingested graph plugs straight into the decomposition stack.
    let local =
        LocalNucleusDecomposition::compute(&graph, &LocalConfig::exact(0.05)).expect("decompose");
    println!(
        "local nucleus decomposition: {} triangles, max score {}",
        local.num_triangles(),
        local.max_score()
    );
    for nucleus in local.k_nuclei(&graph, local.max_score().max(1)) {
        println!(
            "  nucleus with {} vertices / {} edges",
            nucleus.num_vertices(),
            nucleus.num_edges()
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}
