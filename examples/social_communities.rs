//! Community detection in a social network: compare the probabilistic
//! nucleus against the probabilistic truss and core baselines — the
//! Table 3 scenario of the paper — on a pokec-like graph.
//!
//! Run with: `cargo run --release --example social_communities`

use prob_nucleus_repro::nd_datasets::{PaperDataset, Scale};
use prob_nucleus_repro::nucleus::{LocalConfig, LocalNucleusDecomposition};
use prob_nucleus_repro::probdecomp::{
    eta_core_subgraphs, gamma_truss_subgraphs, EtaCoreDecomposition, GammaTrussDecomposition,
};
use prob_nucleus_repro::ugraph::metrics::{
    probabilistic_clustering_coefficient, probabilistic_density,
};
use prob_nucleus_repro::ugraph::UncertainGraph;

fn describe(name: &str, k: u32, subgraphs: &[&UncertainGraph]) {
    if subgraphs.is_empty() {
        println!("{name:>8}: no subgraphs found");
        return;
    }
    let n = subgraphs.len() as f64;
    let pd = subgraphs
        .iter()
        .map(|g| probabilistic_density(g))
        .sum::<f64>()
        / n;
    let pcc = subgraphs
        .iter()
        .map(|g| probabilistic_clustering_coefficient(g))
        .sum::<f64>()
        / n;
    let avg_v = subgraphs
        .iter()
        .map(|g| g.num_vertices() as f64)
        .sum::<f64>()
        / n;
    println!(
        "{name:>8}: k_max = {k:>2}  {} component(s), avg {avg_v:.1} vertices, PD = {pd:.3}, PCC = {pcc:.3}",
        subgraphs.len()
    );
}

fn main() {
    let graph = PaperDataset::Pokec.generate(Scale::Tiny, 11);
    let theta = 0.3;
    println!(
        "pokec-like social network: {} users, {} links (theta = {theta})\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Probabilistic nucleus (this paper).
    let local = LocalNucleusDecomposition::compute(&graph, &LocalConfig::approximate(theta))
        .expect("valid configuration");
    let kn = local.max_score();
    let nuclei = local.k_nuclei(&graph, kn.max(1));
    let nucleus_graphs: Vec<&UncertainGraph> = nuclei.iter().map(|n| n.subgraph.graph()).collect();
    describe("nucleus", kn, &nucleus_graphs);

    // Probabilistic (k,gamma)-truss (Huang et al. 2016).
    let truss = GammaTrussDecomposition::try_compute(&graph, theta).expect("valid theta");
    let kt = truss.max_truss();
    let trusses = gamma_truss_subgraphs(&graph, kt.max(1), theta).expect("valid theta");
    let truss_graphs: Vec<&UncertainGraph> = trusses.iter().map(|t| t.graph()).collect();
    describe("truss", kt, &truss_graphs);

    // Probabilistic (k,eta)-core (Bonchi et al. 2014).
    let core = EtaCoreDecomposition::try_compute(&graph, theta).expect("valid theta");
    let kc = core.max_core();
    let cores = eta_core_subgraphs(&graph, kc.max(1), theta).expect("valid theta");
    let core_graphs: Vec<&UncertainGraph> = cores.iter().map(|c| c.graph()).collect();
    describe("core", kc, &core_graphs);

    println!(
        "\nThe nucleus communities are the smallest and densest — the paper's\n\
         headline observation (Table 3): higher-order structure (triangles in\n\
         4-cliques) isolates the strongly-connected groups that degree- and\n\
         triangle-based notions blur together."
    );
}
