//! Choosing and validating the hybrid-approximation hyperparameters
//! (A, B, C, D of Section 5.3): replays the paper's tuning procedure by
//! comparing each approximation against the exact DP on sampled triangles
//! of a real-shaped dataset.
//!
//! Run with: `cargo run --release --example approximation_tuning`

use prob_nucleus_repro::nd_datasets::{PaperDataset, Scale};
use prob_nucleus_repro::nucleus::approx::{hybrid_max_k, select_method, ApproxMethod};
use prob_nucleus_repro::nucleus::local::dp;
use prob_nucleus_repro::nucleus::{ApproxThresholds, SupportStructure};
use std::collections::HashMap;

fn main() {
    let theta = 0.3;
    let graph = PaperDataset::Flickr.generate(Scale::Tiny, 5);
    let support = SupportStructure::build(&graph);
    println!(
        "flickr-like graph: {} triangles, {} 4-cliques, theta = {theta}\n",
        support.num_triangles(),
        support.num_cliques()
    );

    // Candidate hyperparameter settings: the paper's defaults plus two
    // perturbations.
    let candidates = [
        (
            "paper defaults (A=200,B=100,C=0.25,D=0.9)",
            ApproxThresholds::default(),
        ),
        (
            "aggressive CLT (A=50)",
            ApproxThresholds {
                a: 50,
                ..ApproxThresholds::default()
            },
        ),
        (
            "binomial-friendly (D=0.5)",
            ApproxThresholds {
                d: 0.5,
                ..ApproxThresholds::default()
            },
        ),
    ];

    for (label, thresholds) in candidates {
        let mut method_counts: HashMap<ApproxMethod, usize> = HashMap::new();
        let mut exact_matches = 0usize;
        let mut total = 0usize;
        let mut total_abs_error = 0.0f64;
        for t in 0..support.num_triangles() as u32 {
            let probs = support.completion_probs(t);
            if probs.is_empty() {
                continue;
            }
            let tri_prob = support.triangle_prob(t);
            let exact = dp::max_k(tri_prob, &probs, theta);
            let (approx, method) = hybrid_max_k(tri_prob, &probs, theta, &thresholds);
            *method_counts.entry(method).or_insert(0) += 1;
            total += 1;
            if approx == exact {
                exact_matches += 1;
            }
            total_abs_error += (approx as f64 - exact as f64).abs();
        }
        println!("{label}");
        println!(
            "  agreement with DP: {:.2}%  (avg |error| = {:.4})",
            100.0 * exact_matches as f64 / total.max(1) as f64,
            total_abs_error / total.max(1) as f64
        );
        let mut counts: Vec<_> = method_counts.iter().collect();
        counts.sort_by_key(|(m, _)| m.name());
        for (method, count) in counts {
            println!("  {method:<18} used for {count} triangles");
        }
        println!();
    }

    // Show which method the default selector picks for a few support-list
    // shapes, illustrating conditions (1)-(5).
    println!("method selection examples (paper defaults):");
    let shapes: [(&str, Vec<f64>); 4] = [
        ("250 moderate completions", vec![0.4; 250]),
        ("20 weak completions", vec![0.05; 20]),
        ("120 strong completions", vec![0.9; 120]),
        ("10 equal completions of 0.3", vec![0.3; 10]),
    ];
    for (label, probs) in shapes {
        println!(
            "  {label:<28} -> {}",
            select_method(&probs, &ApproxThresholds::default())
        );
    }
}
