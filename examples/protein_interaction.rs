//! Protein-interaction analysis: find reliable protein complexes in a
//! krogan-like probabilistic PPI network using all three nucleus
//! semantics, and compare their cohesiveness.
//!
//! Run with: `cargo run --release --example protein_interaction`

use prob_nucleus_repro::nd_datasets::{PaperDataset, Scale};
use prob_nucleus_repro::nucleus::{
    global_nuclei, weakly_global_nuclei, GlobalConfig, LocalConfig, LocalNucleusDecomposition,
    SamplingConfig,
};
use prob_nucleus_repro::ugraph::metrics::{
    probabilistic_clustering_coefficient, probabilistic_density,
};

fn main() {
    // A synthetic stand-in for the krogan yeast PPI network: interaction
    // probabilities are experimental confidence scores.
    let graph = PaperDataset::Krogan.generate(Scale::Tiny, 7);
    println!(
        "krogan-like PPI network: {} proteins, {} interactions, avg confidence {:.2}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.average_probability()
    );

    // 1. Local decomposition: complexes where each triangle of proteins is
    //    jointly reinforced by 4-cliques with probability >= theta.
    let theta = 0.1;
    let local = LocalNucleusDecomposition::compute(&graph, &LocalConfig::approximate(theta))
        .expect("valid configuration");
    let k = local.max_score().max(1);
    println!("\nlocal decomposition: k_max = {}", local.max_score());
    for nucleus in local.k_nuclei(&graph, k) {
        let sub = nucleus.subgraph.graph();
        println!(
            "  complex with {} proteins: PD = {:.3}, PCC = {:.3}",
            sub.num_vertices(),
            probabilistic_density(sub),
            probabilistic_clustering_coefficient(sub)
        );
    }

    // 2. Global / weakly-global decompositions: complexes that materialize
    //    as deterministic nuclei across sampled interactomes.
    let config = GlobalConfig::new(0.001).with_sampling(
        SamplingConfig::new(0.1, 0.1)
            .with_num_samples(200)
            .with_seed(7),
    );
    let global = global_nuclei(&graph, k, &config).expect("valid configuration");
    let weak = weakly_global_nuclei(&graph, k, &config).expect("valid configuration");
    println!("\nglobal complexes at k = {k}: {}", global.len());
    for n in &global {
        println!(
            "  {} proteins, min world-probability {:.3}",
            n.num_vertices(),
            n.min_probability
        );
    }
    println!("weakly-global complexes at k = {k}: {}", weak.len());
    for n in &weak {
        println!(
            "  {} proteins, min world-probability {:.3}",
            n.num_vertices(),
            n.min_probability
        );
    }
}
