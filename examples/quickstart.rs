//! Quickstart: build a small probabilistic graph, run the local nucleus
//! decomposition, and inspect the resulting ℓ-(k,θ)-nuclei.
//!
//! Run with: `cargo run --example quickstart`

use prob_nucleus_repro::nucleus::{LocalConfig, LocalNucleusDecomposition};
use prob_nucleus_repro::ugraph::GraphBuilder;

fn main() {
    // A small collaboration network: two tight groups (probable cliques)
    // bridged by a weaker connection.
    let mut builder = GraphBuilder::new();
    // Group A: vertices 0..5, strong ties.
    for u in 0..5u32 {
        for v in (u + 1)..5u32 {
            builder.add_edge(u, v, 0.9).unwrap();
        }
    }
    // Group B: vertices 5..10, medium ties.
    for u in 5..10u32 {
        for v in (u + 1)..10u32 {
            builder.add_edge(u, v, 0.6).unwrap();
        }
    }
    // A weak bridge.
    builder.add_edge(4, 5, 0.2).unwrap();
    let graph = builder.build();

    println!(
        "graph: {} vertices, {} edges, {} triangles",
        graph.num_vertices(),
        graph.num_edges(),
        graph.count_triangles()
    );

    // Local nucleus decomposition with the exact DP at θ = 0.2.
    let theta = 0.2;
    let local = LocalNucleusDecomposition::compute(&graph, &LocalConfig::exact(theta))
        .expect("valid configuration");
    println!(
        "maximum l-nucleusness at theta={theta}: {}",
        local.max_score()
    );

    // Per-triangle scores.
    for (id, triangle) in local.triangle_index().iter() {
        println!("  triangle {triangle}: nucleusness {}", local.score(id));
    }

    // Extract the maximal nuclei for every k.
    for k in 1..=local.max_score() {
        let nuclei = local.k_nuclei(&graph, k);
        println!("l-({k},{theta})-nuclei: {}", nuclei.len());
        for nucleus in nuclei {
            println!(
                "  vertices {:?} ({} edges, {} 4-cliques)",
                nucleus.subgraph.original_vertices(),
                nucleus.num_edges(),
                nucleus.cliques.len()
            );
        }
    }
}
