//! Differential tests of the generic (r,s) peeling engine.
//!
//! The API redesign moved every decomposition — probabilistic (k,η)-core,
//! local (k,γ)-truss, ℓ-NuDecomp and the three deterministic peels — onto
//! one generic engine (`ugraph::rs`).  The pre-redesign peeling loops are
//! frozen verbatim in `probdecomp::reference` and `detdecomp::reference`;
//! these proptests pin the generic engine **bit-identical** to them on
//! random graphs, at 1, 2 and 8 worker threads (the engine's counters and
//! scores must not depend on the thread count).
//!
//! Case count scales with `PROPTEST_CASES` (64 by default, 1024 in the
//! thorough CI job).

use proptest::prelude::*;

use prob_nucleus_repro::detdecomp;
use prob_nucleus_repro::nucleus::{
    DecompConfig, DecompSweep, Decomposition, LocalConfig, LocalNucleusDecomposition, Rank,
    SweepConfig,
};
use prob_nucleus_repro::probdecomp;
use prob_nucleus_repro::ugraph::{GraphBuilder, Parallelism, UncertainGraph};

/// Strategy: a random probabilistic graph with a biased-dense edge set so
/// triangles and 4-cliques actually appear.
fn arb_graph(max_v: u32, density: f64) -> impl Strategy<Value = UncertainGraph> {
    (4..=max_v)
        .prop_flat_map(move |n| {
            let pairs: Vec<(u32, u32)> = (0..n)
                .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
                .collect();
            let m = pairs.len();
            (
                Just(pairs),
                proptest::collection::vec(0.0f64..1.0, m),
                proptest::collection::vec(0.01f64..=1.0, m),
            )
        })
        .prop_map(move |(pairs, coin, probs)| {
            let mut b = GraphBuilder::new();
            for (i, (u, v)) in pairs.into_iter().enumerate() {
                if coin[i] < density {
                    b.add_edge(u, v, probs[i]).unwrap();
                }
            }
            b.build()
        })
}

/// Runs the unified decomposition at 1/2/8 threads and asserts that the
/// scores (and deterministic counters) are thread-independent, returning
/// the sequential scores.
fn thread_independent_scores(g: &UncertainGraph, rank: Rank, threshold: f64) -> Vec<u32> {
    let config = match rank {
        Rank::Core => DecompConfig::core(threshold),
        Rank::Truss => DecompConfig::truss(threshold),
        Rank::Nucleus => DecompConfig::nucleus(threshold),
    };
    let base = Decomposition::compute(g, &config.with_parallelism(Parallelism::Sequential))
        .expect("valid config");
    for threads in [2usize, 8] {
        let par = Decomposition::compute(g, &config.with_parallelism(Parallelism::fixed(threads)))
            .expect("valid config");
        assert_eq!(par.scores(), base.scores(), "{rank} scores x{threads}");
        assert_eq!(
            par.initial_scores(),
            base.initial_scores(),
            "{rank} initial scores x{threads}"
        );
        assert_eq!(
            par.peel_stats(),
            base.peel_stats(),
            "{rank} counters x{threads}"
        );
    }
    base.scores().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// Rank (1,2): the generic engine reproduces the frozen eager
    /// (k,η)-core peel bit-identically at every thread count.
    #[test]
    fn core_matches_frozen_reference(g in arb_graph(14, 0.55), eta in 0.02f64..0.95) {
        let generic = thread_independent_scores(&g, Rank::Core, eta);
        let frozen = probdecomp::reference::eta_core_numbers(&g, eta);
        prop_assert_eq!(generic, frozen);
    }

    /// Rank (2,3): the generic engine reproduces the frozen eager
    /// (k,γ)-truss peel bit-identically at every thread count.
    #[test]
    fn truss_matches_frozen_reference(g in arb_graph(12, 0.6), gamma in 0.02f64..0.95) {
        let generic = thread_independent_scores(&g, Rank::Truss, gamma);
        let frozen = probdecomp::reference::gamma_truss_numbers(&g, gamma);
        prop_assert_eq!(generic, frozen);
    }

    /// Rank (3,4): the unified surface reproduces the dedicated
    /// ℓ-NuDecomp (itself differentially pinned to its own frozen
    /// reference engine inside the nucleus crate) at every thread count.
    #[test]
    fn nucleus_matches_dedicated_decomposition(g in arb_graph(10, 0.7), theta in 0.02f64..0.8) {
        let generic = thread_independent_scores(&g, Rank::Nucleus, theta);
        let dedicated =
            LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(theta)).unwrap();
        prop_assert_eq!(generic.as_slice(), dedicated.scores());
    }

    /// The deterministic peels (rewritten over the same engine) reproduce
    /// their frozen references: Batagelj–Zaveršnik core, eager heap truss
    /// and eager heap (3,4)-nucleus.
    #[test]
    fn deterministic_peels_match_frozen_references(g in arb_graph(12, 0.6)) {
        let core = detdecomp::CoreDecomposition::compute(&g);
        prop_assert_eq!(
            core.core_numbers(),
            detdecomp::reference::core_numbers(&g).as_slice()
        );
        let truss = detdecomp::TrussDecomposition::compute(&g);
        prop_assert_eq!(
            truss.truss_numbers(),
            detdecomp::reference::truss_numbers(&g).as_slice()
        );
        let nucleus = detdecomp::NucleusDecomposition::compute(&g);
        prop_assert_eq!(
            nucleus.nucleusness_values(),
            detdecomp::reference::nucleusness(&g).as_slice()
        );
    }

    /// The deprecated baseline shims agree with the frozen references
    /// (the migration preserved outputs exactly).
    #[test]
    fn baseline_shims_match_frozen_references(g in arb_graph(10, 0.6), th in 0.05f64..0.9) {
        let core = probdecomp::EtaCoreDecomposition::try_compute(&g, th).unwrap();
        prop_assert_eq!(
            core.core_numbers(),
            probdecomp::reference::eta_core_numbers(&g, th).as_slice()
        );
        let truss = probdecomp::GammaTrussDecomposition::try_compute(&g, th).unwrap();
        prop_assert_eq!(
            truss.truss_numbers(),
            probdecomp::reference::gamma_truss_numbers(&g, th).as_slice()
        );
    }

    /// A multi-threshold sweep at any rank equals the independent
    /// single-threshold runs point for point.
    #[test]
    fn sweeps_match_independent_runs(g in arb_graph(10, 0.6)) {
        let grid = vec![0.05, 0.2, 0.5, 0.8];
        for rank in [Rank::Core, Rank::Truss, Rank::Nucleus] {
            let sweep = DecompSweep::compute(&g, &SweepConfig::exact(grid.clone()).with_rank(rank))
                .expect("valid sweep");
            for (i, &threshold) in grid.iter().enumerate() {
                let config = match rank {
                    Rank::Core => DecompConfig::core(threshold),
                    Rank::Truss => DecompConfig::truss(threshold),
                    Rank::Nucleus => DecompConfig::nucleus(threshold),
                };
                let solo = Decomposition::compute(&g, &config).expect("valid config");
                prop_assert_eq!(
                    sweep.scores_at_index(i),
                    solo.scores(),
                    "{} at threshold {}",
                    rank,
                    threshold
                );
            }
        }
    }
}
