//! Property-based tests (proptest) of the core invariants across crates.

use proptest::prelude::*;

use prob_nucleus_repro::detdecomp::NucleusDecomposition;
use prob_nucleus_repro::nucleus::approx::{tail_probability, ApproxMethod};
use prob_nucleus_repro::nucleus::local::dp;
use prob_nucleus_repro::nucleus::{LocalConfig, LocalNucleusDecomposition};
use prob_nucleus_repro::ugraph::{GraphBuilder, UncertainGraph};

/// Strategy: a random probabilistic graph with up to `max_v` vertices and
/// a biased-dense edge set so triangles and 4-cliques actually appear.
fn arb_graph(max_v: u32, density: f64) -> impl Strategy<Value = UncertainGraph> {
    (4..=max_v)
        .prop_flat_map(move |n| {
            let pairs: Vec<(u32, u32)> = (0..n)
                .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
                .collect();
            let m = pairs.len();
            (
                Just(pairs),
                proptest::collection::vec(0.0f64..1.0, m),
                proptest::collection::vec(0.01f64..=1.0, m),
            )
        })
        .prop_map(move |(pairs, coin, probs)| {
            let mut b = GraphBuilder::new();
            for (i, (u, v)) in pairs.into_iter().enumerate() {
                if coin[i] < density {
                    b.add_edge(u, v, probs[i]).unwrap();
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A decomposition computed on a zero-copy memory-mapped graph is
    /// bit-identical to one computed on the owned reload of the same
    /// snapshot — the scoring pipeline cannot tell where the arrays live.
    #[test]
    fn mapped_and_owned_graphs_decompose_identically(
        g in arb_graph(9, 0.75), theta in 0.05f64..0.9,
    ) {
        use prob_nucleus_repro::ugraph::io::{open_snapshot, read_snapshot_file, write_snapshot_file};
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "nd_property_mapped_decomp_{}_{}.ugsnap",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        write_snapshot_file(&g, &path).unwrap();
        let owned = read_snapshot_file(&path).unwrap();
        let mapped = open_snapshot(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(mapped.graph(), &owned);
        let cfg = LocalConfig::exact(theta);
        let on_owned = LocalNucleusDecomposition::compute(&owned, &cfg).unwrap();
        let on_mapped = LocalNucleusDecomposition::compute(mapped.graph(), &cfg).unwrap();
        prop_assert_eq!(on_owned.scores(), on_mapped.scores());
        prop_assert_eq!(on_owned.initial_scores(), on_mapped.initial_scores());
    }

    /// The DP support pmf is a probability distribution and its tail is
    /// monotone non-increasing.
    #[test]
    fn dp_pmf_is_a_distribution(probs in proptest::collection::vec(0.001f64..=1.0, 0..20)) {
        let pmf = dp::support_pmf(&probs);
        let total: f64 = pmf.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(pmf.iter().all(|&p| (-1e-12..=1.0 + 1e-12).contains(&p)));
        let tail = dp::support_tail(&probs);
        for w in tail.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }

    /// Every approximation produces tails in [0,1] that start at 1, and the
    /// DP method is exact regardless of input.
    #[test]
    fn approximation_tails_are_valid(probs in proptest::collection::vec(0.001f64..=1.0, 1..40)) {
        for method in [
            ApproxMethod::Poisson,
            ApproxMethod::TranslatedPoisson,
            ApproxMethod::Binomial,
            ApproxMethod::Clt,
            ApproxMethod::DynamicProgramming,
        ] {
            prop_assert!((tail_probability(method, &probs, 0) - 1.0).abs() < 1e-9);
            for k in 0..=probs.len() {
                let t = tail_probability(method, &probs, k);
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&t), "{method} k={k} -> {t}");
            }
        }
    }

    /// ℓ-nucleusness never exceeds deterministic nucleusness, and the
    /// number of scores equals the number of triangles.
    #[test]
    fn local_scores_bounded_by_deterministic(g in arb_graph(9, 0.75), theta in 0.05f64..0.9) {
        let local = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(theta)).unwrap();
        let det = NucleusDecomposition::compute(&g);
        prop_assert_eq!(local.num_triangles(), det.num_triangles());
        for (id, tri) in local.triangle_index().iter() {
            prop_assert!(local.score(id) <= det.nucleusness_of(&tri).unwrap());
        }
    }

    /// Monotonicity in θ: raising the threshold can only lower scores.
    #[test]
    fn local_scores_monotone_in_theta(g in arb_graph(8, 0.8)) {
        let low = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.1)).unwrap();
        let high = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.5)).unwrap();
        for t in 0..low.num_triangles() {
            prop_assert!(high.scores()[t] <= low.scores()[t]);
        }
    }

    /// Extracted nuclei are unions of 4-cliques whose triangles all reach
    /// the requested score, and their edges all exist in the parent graph.
    #[test]
    fn extracted_nuclei_are_well_formed(g in arb_graph(9, 0.8)) {
        let theta = 0.2;
        let local = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(theta)).unwrap();
        for k in 1..=local.max_score() {
            for nucleus in local.k_nuclei(&g, k) {
                prop_assert!(!nucleus.cliques.is_empty());
                for tri in &nucleus.triangles {
                    prop_assert!(local.score_of(tri).unwrap() >= k);
                }
                for clique in &nucleus.cliques {
                    for (u, v) in clique.edges() {
                        prop_assert!(g.has_edge(u, v));
                    }
                }
            }
        }
    }

    /// Possible-world probabilities over a small graph sum to one, and the
    /// deterministic core numbers of any world are bounded by the ones of
    /// the full graph.
    #[test]
    fn world_probabilities_sum_to_one(g in arb_graph(6, 0.6)) {
        prop_assume!(g.num_edges() <= 12);
        let total: f64 = prob_nucleus_repro::ugraph::possible_world::enumerate_all_worlds(&g)
            .map(|w| w.probability(&g))
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }
}
