//! Cross-crate integration tests: the probabilistic decompositions must be
//! consistent with the deterministic ones and with each other.

use prob_nucleus_repro::detdecomp::{CoreDecomposition, NucleusDecomposition, TrussDecomposition};
use prob_nucleus_repro::nucleus::{LocalConfig, LocalNucleusDecomposition};
use prob_nucleus_repro::probdecomp::{EtaCoreDecomposition, GammaTrussDecomposition};
use prob_nucleus_repro::ugraph::generators::{
    assign_probabilities, planted_clique_edges, PlantedCliqueConfig, ProbabilityModel,
};
use prob_nucleus_repro::ugraph::{EdgeId, UncertainGraph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn clique_rich_graph(seed: u64, p: ProbabilityModel) -> UncertainGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let cfg = PlantedCliqueConfig {
        num_vertices: 60,
        background_edges: 80,
        num_communities: 6,
        community_size: (5, 7),
        overlap: 2,
    };
    let edges = planted_clique_edges(&cfg, &mut rng);
    assign_probabilities(&edges, 60, &p, &mut rng)
}

/// With all edge probabilities equal to 1, every probabilistic
/// decomposition must coincide with its deterministic counterpart.
#[test]
fn certain_graph_probabilistic_equals_deterministic() {
    let g = clique_rich_graph(1, ProbabilityModel::Constant(1.0));

    let det_core = CoreDecomposition::compute(&g);
    let prob_core = EtaCoreDecomposition::try_compute(&g, 0.9).unwrap();
    assert_eq!(det_core.core_numbers(), prob_core.core_numbers());

    let det_truss = TrussDecomposition::compute(&g);
    let prob_truss = GammaTrussDecomposition::try_compute(&g, 0.9).unwrap();
    assert_eq!(det_truss.truss_numbers(), prob_truss.truss_numbers());

    let det_nucleus = NucleusDecomposition::compute(&g);
    let prob_nucleus = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.9)).unwrap();
    for (id, tri) in prob_nucleus.triangle_index().iter() {
        assert_eq!(
            prob_nucleus.score(id),
            det_nucleus.nucleusness_of(&tri).unwrap(),
            "triangle {tri}"
        );
    }
}

/// The probabilistic scores are upper-bounded by the deterministic ones
/// and are monotone in θ on probabilistic graphs.
#[test]
fn probabilistic_scores_bounded_by_deterministic() {
    let g = clique_rich_graph(
        2,
        ProbabilityModel::Uniform {
            low: 0.3,
            high: 1.0,
        },
    );
    let det = NucleusDecomposition::compute(&g);
    let loose = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.05)).unwrap();
    let tight = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.6)).unwrap();
    for (id, tri) in loose.triangle_index().iter() {
        let d = det.nucleusness_of(&tri).unwrap();
        assert!(loose.score(id) <= d);
        assert!(tight.score(id) <= loose.score(id));
    }
}

/// The nucleus hierarchy is consistent with the truss and core hierarchies:
/// every edge of an ℓ-(k,θ)-nucleus belongs to the (k,γ)-truss with k ≥ 1
/// at the same threshold, which in turn lives inside the (k,η)-core.
/// (This is the probabilistic analogue of nucleus ⊆ truss ⊆ core.)
#[test]
fn nucleus_subgraphs_are_inside_truss_and_core() {
    let theta = 0.2;
    let g = clique_rich_graph(
        3,
        ProbabilityModel::Uniform {
            low: 0.5,
            high: 1.0,
        },
    );
    let local = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(theta)).unwrap();
    if local.max_score() == 0 {
        return; // nothing to check on this draw
    }
    let truss = GammaTrussDecomposition::try_compute(&g, theta).unwrap();
    let core = EtaCoreDecomposition::try_compute(&g, theta).unwrap();
    for nucleus in local.k_nuclei(&g, 1) {
        for &v in nucleus.subgraph.original_vertices() {
            assert!(core.core_number(v) >= 1, "vertex {v} outside the 1-core");
        }
        for tri in &nucleus.triangles {
            for (u, v) in tri.edges() {
                let e: EdgeId = g.edge_id(u, v).unwrap();
                assert!(
                    truss.truss_number(e) >= 1,
                    "edge ({u},{v}) outside the (1,gamma)-truss"
                );
            }
        }
    }
}

/// k-(1,2)-nucleus = k-core and k-(2,3)-nucleus = k-truss: the generalized
/// definition collapses to the classical ones on deterministic graphs.
/// Here verified through the support-based definitions: a vertex of core
/// number k has at least k neighbours in its core, and an edge of truss
/// number k has at least k triangles in its truss.
#[test]
fn deterministic_hierarchy_sanity() {
    let g = clique_rich_graph(4, ProbabilityModel::Constant(1.0));
    let core = CoreDecomposition::compute(&g);
    let kmax = core.max_core();
    let members = core.vertices_in_k_core(kmax);
    for &v in &members {
        let degree_in_core = g
            .neighbors(v)
            .iter()
            .filter(|&&u| members.contains(&u))
            .count() as u32;
        assert!(degree_in_core >= kmax);
    }

    let truss = TrussDecomposition::compute(&g);
    let tmax = truss.max_truss();
    let edges = truss.edges_in_k_truss(tmax);
    for &e in &edges {
        let edge = g.edge(e);
        let support_in_truss = g
            .common_neighbors(edge.u, edge.v)
            .iter()
            .filter(|&&w| {
                edges.contains(&g.edge_id(edge.u, w).unwrap())
                    && edges.contains(&g.edge_id(edge.v, w).unwrap())
            })
            .count() as u32;
        assert!(support_in_truss >= tmax);
    }
}

/// Every triangle of an extracted ℓ-(k,θ)-nucleus really does satisfy the
/// definition: its probability of being in ≥ k 4-cliques of the nucleus is
/// at least θ (checked with the exact DP over the nucleus's own cliques).
///
/// Like the deterministic nucleus decomposition, a nucleus is a union of
/// qualifying 4-cliques; the definitional bound quantifies over the
/// triangles *of those cliques*, not over stray triangles that the union
/// of clique edges happens to form on the side.
#[test]
fn extracted_nuclei_satisfy_definition() {
    let theta = 0.15;
    let g = clique_rich_graph(
        5,
        ProbabilityModel::Uniform {
            low: 0.4,
            high: 1.0,
        },
    );
    let local = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(theta)).unwrap();
    for k in 1..=local.max_score() {
        for nucleus in local.k_nuclei(&g, k) {
            for tri in &nucleus.triangles {
                // Completion probabilities of the nucleus's 4-cliques that
                // contain this triangle: for the clique's fourth vertex z,
                // Pr(E) is the product of the three edge probabilities
                // linking z to the triangle.
                let probs: Vec<f64> = nucleus
                    .cliques
                    .iter()
                    .filter(|c| c.contains_triangle(tri))
                    .map(|c| {
                        let z = c
                            .vertices()
                            .into_iter()
                            .find(|&v| !tri.contains(v))
                            .expect("clique has a vertex outside the triangle");
                        tri.vertices()
                            .into_iter()
                            .map(|v| g.edge_probability(v, z).expect("clique edge exists"))
                            .product()
                    })
                    .collect();
                assert!(
                    !probs.is_empty(),
                    "k={k}: triangle {tri} is in no clique of its nucleus"
                );
                let tri_prob = tri.probability(&g).expect("triangle edges exist");
                let tail = prob_nucleus_repro::nucleus::local::dp::local_tail_probability(
                    tri_prob, &probs, k as usize,
                );
                assert!(
                    tail >= theta - 1e-9,
                    "k={k}: triangle {tri} tail {tail} below theta {theta}"
                );
            }
        }
    }
}
