//! End-to-end reproduction of the worked examples of Section 3 of the
//! paper (Figures 1-3, Examples 1-2), exercising the public API across
//! crates.

use prob_nucleus_repro::nucleus::exact::{
    exact_global_tail, exact_local_tail, exact_weakly_global_tail,
};
use prob_nucleus_repro::nucleus::{
    global_nuclei, weakly_global_nuclei, GlobalConfig, LocalConfig, LocalNucleusDecomposition,
    SamplingConfig,
};
use prob_nucleus_repro::ugraph::{GraphBuilder, Triangle, UncertainGraph};

/// The subgraph of Figure 2a (the ℓ-(1,0.42)-nucleus of Figure 1a).
fn figure2a() -> UncertainGraph {
    let mut b = GraphBuilder::new();
    b.add_edge(1, 2, 1.0).unwrap();
    b.add_edge(1, 3, 1.0).unwrap();
    b.add_edge(2, 3, 1.0).unwrap();
    b.add_edge(1, 5, 1.0).unwrap();
    b.add_edge(3, 5, 1.0).unwrap();
    b.add_edge(2, 5, 0.5).unwrap();
    b.add_edge(1, 4, 0.6).unwrap();
    b.add_edge(2, 4, 0.7).unwrap();
    b.add_edge(3, 4, 1.0).unwrap();
    b.build()
}

#[test]
fn example1_local_nucleus_at_042() {
    // Each triangle of the Figure 2a subgraph is in one 4-clique with
    // probability at least 0.42.
    let g = figure2a();
    let local = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.42)).unwrap();
    assert_eq!(local.max_score(), 1);
    assert!(local.scores().iter().all(|&s| s == 1));
    // Pr(X >= 1) for triangle (1,3,5) is exactly 0.5 (the 4-clique
    // {1,2,3,5} exists with probability 0.5).
    let p = exact_local_tail(&g, &Triangle::new(1, 3, 5), 1).unwrap();
    assert!((p - 0.5).abs() < 1e-9);
}

#[test]
fn example1_not_a_global_nucleus_but_weakly_global() {
    let g = figure2a();
    let tri = Triangle::new(1, 3, 5);
    // Pr(X_g >= 1) = 0.27 < 0.42 (Figure 2b/2c worlds).
    let pg = exact_global_tail(&g, &tri, 1).unwrap();
    assert!((pg - 0.27).abs() < 1e-9);
    // The same subgraph is a w-(1, 0.42)-nucleus.
    let pw = exact_weakly_global_tail(&g, &tri, 1).unwrap();
    assert!(pw >= 0.42);

    // The Monte-Carlo algorithms reach the same conclusions.  The
    // threshold is lowered to 0.35 for the sampled run so that triangles
    // whose true probability is exactly 0.42 are not lost to estimation
    // noise at the boundary.
    let config = GlobalConfig::new(0.35).with_sampling(
        SamplingConfig::new(0.1, 0.1)
            .with_num_samples(800)
            .with_seed(3),
    );
    let weak = weakly_global_nuclei(&g, 1, &config).unwrap();
    assert_eq!(weak.len(), 1);
    assert_eq!(weak[0].num_vertices(), 5);
    let global = global_nuclei(&g, 1, &config).unwrap();
    // Only the K4s of Figure 3 qualify as fully-global nuclei; the
    // 5-vertex candidate is rejected.
    assert!(global.iter().all(|n| n.num_vertices() == 4));
}

#[test]
fn figure3_global_nuclei_probabilities() {
    // Figure 3a: K4 {1,2,3,5} is a g-(1,0.42)-nucleus with probability 0.5.
    let mut b = GraphBuilder::new();
    b.add_edge(1, 2, 1.0).unwrap();
    b.add_edge(1, 3, 1.0).unwrap();
    b.add_edge(1, 5, 1.0).unwrap();
    b.add_edge(2, 3, 1.0).unwrap();
    b.add_edge(3, 5, 1.0).unwrap();
    b.add_edge(2, 5, 0.5).unwrap();
    let g = b.build();
    for tri in prob_nucleus_repro::ugraph::triangles::enumerate_triangles(&g) {
        let p = exact_global_tail(&g, &tri, 1).unwrap();
        assert!((p - 0.5).abs() < 1e-9, "triangle {tri}");
    }

    // Figure 3b: K4 {1,2,3,4} with two uncertain edges 0.6 and 0.7 is a
    // g-(1,0.42)-nucleus with probability exactly 0.42.
    let mut b = GraphBuilder::new();
    b.add_edge(1, 2, 1.0).unwrap();
    b.add_edge(1, 3, 1.0).unwrap();
    b.add_edge(2, 3, 1.0).unwrap();
    b.add_edge(3, 4, 1.0).unwrap();
    b.add_edge(1, 4, 0.6).unwrap();
    b.add_edge(2, 4, 0.7).unwrap();
    let g = b.build();
    for tri in prob_nucleus_repro::ugraph::triangles::enumerate_triangles(&g) {
        let p = exact_global_tail(&g, &tri, 1).unwrap();
        assert!((p - 0.42).abs() < 1e-9, "triangle {tri}");
    }
}

#[test]
fn example2_k5_is_local_but_not_weakly_global() {
    // Figure 3c: K5 with all edges 0.6: an ℓ-(2,0.01)-nucleus whose
    // weakly-global probability is 0.6^10 ≈ 0.006 < 0.01.
    let mut b = GraphBuilder::new();
    for u in 0..5u32 {
        for v in (u + 1)..5u32 {
            b.add_edge(u, v, 0.6).unwrap();
        }
    }
    let g = b.build();
    let local = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.01)).unwrap();
    assert!(local.scores().iter().all(|&s| s == 2));
    let pw = exact_weakly_global_tail(&g, &Triangle::new(0, 1, 2), 2).unwrap();
    assert!((pw - 0.6f64.powi(10)).abs() < 1e-9);
    assert!(pw < 0.01);
}

#[test]
fn possible_world_probability_of_figure1() {
    // Section 2's example: the world of Figure 1b (edges (1,7) and (2,4)
    // missing) has probability 0.01152 in the graph of Figure 1a.
    let mut b = GraphBuilder::new();
    b.add_edge(1, 2, 1.0).unwrap();
    b.add_edge(1, 3, 1.0).unwrap();
    b.add_edge(2, 3, 1.0).unwrap();
    b.add_edge(1, 5, 1.0).unwrap();
    b.add_edge(3, 5, 1.0).unwrap();
    b.add_edge(2, 5, 0.5).unwrap();
    b.add_edge(1, 4, 0.6).unwrap();
    b.add_edge(2, 4, 0.7).unwrap();
    b.add_edge(3, 4, 1.0).unwrap();
    b.add_edge(1, 7, 0.8).unwrap();
    b.add_edge(6, 7, 0.8).unwrap();
    b.add_edge(1, 6, 0.8).unwrap();
    let g = b.build();
    let mut mask = vec![true; g.num_edges()];
    mask[g.edge_id(1, 7).unwrap() as usize] = false;
    mask[g.edge_id(2, 4).unwrap() as usize] = false;
    let world = prob_nucleus_repro::ugraph::PossibleWorld::from_mask(mask);
    // Present uncertain edges contribute 0.5 * 0.6 * 0.8 * 0.8 and the two
    // absent edges contribute (1-0.8) * (1-0.7), giving 0.01152.
    let p = world.probability(&g);
    assert!((p - 0.01152).abs() < 1e-9, "world probability {p}");
}
