//! Exhaustive possible-world oracle.
//!
//! For graphs with at most 12 edges, all `2^m` possible worlds can be
//! enumerated and every probabilistic quantity the decomposition stack
//! computes analytically can be cross-checked against the brute-force
//! distribution (Equation 1 of the paper):
//!
//! * the triangle-support pmf/tails of `nucleus::local::dp`
//!   (`support_pmf`, `local_tail_probability`, Proposition 5.1),
//! * expected triangle and 4-clique counts,
//! * the initial local nucleus scores (the largest `k` with
//!   `Pr[△ ∧ ζ ≥ k] ≥ θ`), and the invariant that peeling only lowers
//!   scores.
//!
//! Hand-built fixtures pin the small worked examples; proptest sweeps
//! random tiny graphs (scale the case count with `PROPTEST_CASES`).
//!
//! The same oracle also pins the incremental-update path: a sweep built
//! on one tiny graph, repaired through
//! [`DecompSweep::apply_updates`](prob_nucleus_repro::nucleus::DecompSweep::apply_updates),
//! must report exactly the scores the exhaustive distribution of the
//! *updated* graph demands — the repair is checked against ground truth,
//! not just against a from-scratch run of the same code.

use proptest::prelude::*;

use prob_nucleus_repro::nucleus::local::dp;
use prob_nucleus_repro::nucleus::{
    DecompConfig, DecompSweep, Decomposition, LocalConfig, LocalNucleusDecomposition, Rank,
    SupportStructure, SweepConfig, ThetaSweep,
};
use prob_nucleus_repro::ugraph::{EdgeId, EdgeUpdate, GraphBuilder, TriangleId, UncertainGraph};

const TOL: f64 = 1e-9;

/// Brute-force distribution over all `2^m` possible worlds.
struct WorldOracle {
    support: SupportStructure,
    /// `tail[t][k] = Pr[△_t exists ∧ ζ_t ≥ k]`, `k = 0..=support(t)`.
    tail: Vec<Vec<f64>>,
    /// `pmf[t][k] = Pr[△_t exists ∧ ζ_t = k]`.
    pmf: Vec<Vec<f64>>,
    /// `Σ_w Pr(w) · #triangles(w)`.
    expected_triangles: f64,
    /// `Σ_w Pr(w) · #4-cliques(w)`.
    expected_four_cliques: f64,
    /// `Σ_w Pr(w)` — must be 1.
    total_probability: f64,
}

fn edge_mask(graph: &UncertainGraph, pairs: &[(u32, u32)]) -> u32 {
    pairs.iter().fold(0u32, |mask, &(u, v)| {
        mask | (1 << graph.edge_id(u, v).expect("edge of enumerated structure"))
    })
}

fn brute_force(graph: &UncertainGraph) -> WorldOracle {
    let m = graph.num_edges();
    assert!(m <= 12, "oracle is exhaustive; keep graphs tiny");
    let support = SupportStructure::build(graph);
    let nt = support.num_triangles();

    // Bitmask of each triangle's three edges and of each 4-clique's six.
    let tri_masks: Vec<u32> = (0..nt as TriangleId)
        .map(|t| edge_mask(graph, &support.triangle(t).edges()))
        .collect();
    let clique_masks: Vec<u32> = support
        .cliques()
        .iter()
        .map(|c| edge_mask(graph, &c.clique.edges()))
        .collect();

    let mut tail = vec![Vec::new(); nt];
    let mut pmf = vec![Vec::new(); nt];
    for t in 0..nt {
        let c = support.support(t as TriangleId);
        tail[t] = vec![0.0; c + 1];
        pmf[t] = vec![0.0; c + 1];
    }
    let mut expected_triangles = 0.0;
    let mut expected_four_cliques = 0.0;
    let mut total_probability = 0.0;

    let probs: Vec<f64> = graph.edges().iter().map(|e| e.p).collect();
    for world in 0u32..(1u32 << m) {
        let mut pw = 1.0;
        for (e, &pe) in probs.iter().enumerate() {
            pw *= if world & (1 << e) != 0 { pe } else { 1.0 - pe };
        }
        total_probability += pw;

        for &mask in &clique_masks {
            if world & mask == mask {
                expected_four_cliques += pw;
            }
        }
        for t in 0..nt {
            let t_mask = tri_masks[t];
            if world & t_mask != t_mask {
                continue;
            }
            expected_triangles += pw;
            // ζ_t: materialized 4-cliques containing the triangle.
            let zeta = support
                .cliques_of(t as TriangleId)
                .iter()
                .filter(|&&c| {
                    let mask = clique_masks[c as usize];
                    world & mask == mask
                })
                .count();
            pmf[t][zeta] += pw;
            for entry in &mut tail[t][..=zeta] {
                *entry += pw;
            }
        }
    }

    WorldOracle {
        support,
        tail,
        pmf,
        expected_triangles,
        expected_four_cliques,
        total_probability,
    }
}

fn assert_close(a: f64, b: f64, what: &str) {
    assert!((a - b).abs() < TOL, "{what}: {a} vs {b}");
}

/// Runs every analytic-vs-brute-force cross-check on one graph.
fn check_graph(graph: &UncertainGraph, thetas: &[f64]) {
    let oracle = brute_force(graph);
    let support = &oracle.support;
    assert_close(oracle.total_probability, 1.0, "world probabilities");

    // Expected subgraph counts: Σ_△ Pr(△) and Σ_C Pr(C).
    let analytic_triangles: f64 = (0..support.num_triangles() as TriangleId)
        .map(|t| support.triangle_prob(t))
        .sum();
    assert_close(
        oracle.expected_triangles,
        analytic_triangles,
        "expected triangle count",
    );
    let analytic_cliques: f64 = support
        .cliques()
        .iter()
        .map(|c| c.clique.probability(graph).expect("clique edges exist"))
        .sum();
    assert_close(
        oracle.expected_four_cliques,
        analytic_cliques,
        "expected 4-clique count",
    );

    // DP pmf and tails against the brute-force distribution
    // (Proposition 5.1: Pr[△ ∧ ζ ≥ k] = Pr(△) · Pr[ζ ≥ k]).
    for t in 0..support.num_triangles() as TriangleId {
        let completion = support.completion_probs(t);
        let tri_prob = support.triangle_prob(t);
        let dp_pmf = dp::support_pmf(&completion);
        assert_eq!(dp_pmf.len(), support.support(t) + 1);
        for (k, &dp_mass) in dp_pmf.iter().enumerate() {
            assert_close(
                oracle.pmf[t as usize][k],
                tri_prob * dp_mass,
                &format!("pmf of triangle {t} at k={k}"),
            );
            assert_close(
                oracle.tail[t as usize][k],
                dp::local_tail_probability(tri_prob, &completion, k),
                &format!("tail of triangle {t} at k={k}"),
            );
        }
        // Beyond the support the tail is exactly zero.
        assert_eq!(
            dp::local_tail_probability(tri_prob, &completion, support.support(t) + 1),
            0.0
        );
    }

    // Local nucleus scores: the initial score is the largest k whose
    // brute-force tail clears θ; peeling can only lower scores.
    for &theta in thetas {
        let local =
            LocalNucleusDecomposition::with_support(support.clone(), &LocalConfig::exact(theta))
                .expect("valid config");
        assert_eq!(local.num_triangles(), support.num_triangles());
        for t in 0..support.num_triangles() {
            let brute_initial = (0..oracle.tail[t].len())
                .rev()
                .find(|&k| oracle.tail[t][k] >= theta)
                .unwrap_or(0) as u32;
            assert_eq!(
                local.initial_scores()[t],
                brute_initial,
                "initial score of triangle {t} at theta {theta}"
            );
            assert!(
                local.scores()[t] <= local.initial_scores()[t],
                "peeling must not raise scores"
            );
        }
    }

    // θ-sweep index: one support build answering every grid point must
    // agree with the exhaustive distribution at each θ — same
    // brute-force initial scores, same per-θ scores as the independent
    // decomposition, and rows non-increasing in θ.
    let mut grid = thetas.to_vec();
    grid.sort_by(|a, b| a.partial_cmp(b).expect("thetas are finite"));
    grid.dedup();
    let sweep = ThetaSweep::new(SweepConfig::exact(grid.clone())).expect("valid grid");
    let index = sweep
        .run_with_support(support.clone())
        .expect("valid sweep");
    assert!(index.is_monotone_in_theta(), "sweep rows must be sorted");
    for &theta in &grid {
        let initial = index.initial_scores_at(theta).expect("grid point");
        let solo =
            LocalNucleusDecomposition::with_support(support.clone(), &LocalConfig::exact(theta))
                .expect("valid config");
        assert_eq!(index.scores_at(theta).expect("grid point"), solo.scores());
        for (t, &sweep_initial) in initial.iter().enumerate() {
            let brute_initial = (0..oracle.tail[t].len())
                .rev()
                .find(|&k| oracle.tail[t][k] >= theta)
                .unwrap_or(0) as u32;
            assert_eq!(
                sweep_initial, brute_initial,
                "sweep initial score of triangle {t} at theta {theta}"
            );
        }
    }
}

/// Rank-(2,3) oracle: `tail[e][k] = Pr[e exists ∧ X_e ≥ k]`, with `X_e`
/// the number of triangles through `e` in the sampled world, from the
/// exhaustive `2^m` enumeration.
fn truss_world_tails(graph: &UncertainGraph) -> Vec<Vec<f64>> {
    let m = graph.num_edges();
    assert!(m <= 12, "oracle is exhaustive; keep graphs tiny");
    // For every edge, the masks of the two other edges of each potential
    // triangle through it.
    let wedge_masks: Vec<Vec<u32>> = (0..m as EdgeId)
        .map(|e| {
            let edge = graph.edge(e);
            graph
                .common_neighbors(edge.u, edge.v)
                .iter()
                .map(|&w| {
                    let euw = graph.edge_id(edge.u, w).expect("wedge edge");
                    let evw = graph.edge_id(edge.v, w).expect("wedge edge");
                    (1u32 << euw) | (1u32 << evw)
                })
                .collect()
        })
        .collect();

    let probs: Vec<f64> = graph.edges().iter().map(|e| e.p).collect();
    let mut tail: Vec<Vec<f64>> = wedge_masks
        .iter()
        .map(|wedges| vec![0.0; wedges.len() + 1])
        .collect();
    for world in 0u32..(1u32 << m) {
        let mut pw = 1.0;
        for (e, &pe) in probs.iter().enumerate() {
            pw *= if world & (1 << e) != 0 { pe } else { 1.0 - pe };
        }
        for e in 0..m {
            if world & (1 << e) == 0 {
                continue;
            }
            let x = wedge_masks[e]
                .iter()
                .filter(|&&mask| world & mask == mask)
                .count();
            for entry in &mut tail[e][..=x] {
                *entry += pw;
            }
        }
    }
    tail
}

/// Cross-checks the generic engine's (2,3) instance against the
/// brute-force distribution: the initial γ-support of every edge is the
/// largest `k` whose exhaustive tail clears γ, and peeling only lowers
/// scores.
fn check_truss_rank(graph: &UncertainGraph, gammas: &[f64]) {
    let tail = truss_world_tails(graph);
    for &gamma in gammas {
        let decomp =
            Decomposition::compute(graph, &DecompConfig::truss(gamma)).expect("valid gamma");
        for (e, edge_tail) in tail.iter().enumerate() {
            let brute_initial = (0..edge_tail.len())
                .rev()
                .find(|&k| edge_tail[k] >= gamma)
                .unwrap_or(0) as u32;
            assert_eq!(
                decomp.initial_scores()[e],
                brute_initial,
                "initial gamma-support of edge {e} at gamma {gamma}"
            );
            assert!(
                decomp.scores()[e] <= decomp.initial_scores()[e],
                "peeling must not raise scores"
            );
        }
    }
}

#[test]
fn truss_rank_fixtures_match_brute_force() {
    // K4 with mixed probabilities: every edge sits in two potential
    // triangles.
    let mut b = GraphBuilder::new();
    let mut p = 0.45;
    for &(u, v) in &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
        b.add_edge(u, v, p).unwrap();
        p = (p + 0.07).min(0.95);
    }
    check_truss_rank(&b.build(), &[0.01, 0.1, 0.3, 0.7]);

    // Bowtie: two triangles sharing edge (1,2) — the shared edge has two
    // wedges, the outer edges one each.
    let mut b = GraphBuilder::new();
    for &(u, v, p) in &[
        (0u32, 1u32, 0.9),
        (0, 2, 0.8),
        (1, 2, 0.7),
        (1, 3, 0.6),
        (2, 3, 0.5),
    ] {
        b.add_edge(u, v, p).unwrap();
    }
    check_truss_rank(&b.build(), &[0.05, 0.25, 0.5]);

    // Triangle-free path: all supports are zero at every gamma.
    let mut b = GraphBuilder::new();
    for i in 0..4u32 {
        b.add_edge(i, i + 1, 0.6).unwrap();
    }
    check_truss_rank(&b.build(), &[0.1, 0.5]);
}

#[test]
fn k4_fixture_matches_brute_force() {
    let mut b = GraphBuilder::new();
    for &(u, v) in &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
        b.add_edge(u, v, 0.5).unwrap();
    }
    let g = b.build();
    check_graph(&g, &[0.01, 0.1, 0.3]);

    // Worked example: every triangle of K4(p=0.5) has Pr(△) = 1/8 and one
    // completion event with Pr(E) = 1/8, so Pr[△ ∧ ζ ≥ 1] = 1/64.
    let oracle = brute_force(&g);
    for t in 0..4 {
        assert_close(oracle.tail[t][0], 0.125, "K4 triangle probability");
        assert_close(oracle.tail[t][1], 1.0 / 64.0, "K4 joint clique probability");
    }
    // θ between 1/64 and 1/8 separates initial scores 0 and 1.
    let sep = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.05)).unwrap();
    assert!(sep.initial_scores().iter().all(|&s| s == 0));
    let loose = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.01)).unwrap();
    assert!(loose.initial_scores().iter().all(|&s| s == 1));
}

#[test]
fn k5_with_distinct_probabilities_matches_brute_force() {
    let mut b = GraphBuilder::new();
    let mut p = 0.35;
    for u in 0..5u32 {
        for v in (u + 1)..5u32 {
            b.add_edge(u, v, p).unwrap();
            p = (p + 0.061).min(0.99);
        }
    }
    let g = b.build();
    assert_eq!(g.num_edges(), 10);
    check_graph(&g, &[0.005, 0.05, 0.2, 0.6]);
}

#[test]
fn sparse_fixtures_match_brute_force() {
    // A lone triangle: ζ is identically zero.
    let mut b = GraphBuilder::new();
    b.add_edge(0, 1, 0.9).unwrap();
    b.add_edge(1, 2, 0.8).unwrap();
    b.add_edge(0, 2, 0.7).unwrap();
    let tri = b.build();
    check_graph(&tri, &[0.1, 0.5, 0.9]);
    let oracle = brute_force(&tri);
    assert_close(oracle.tail[0][0], 0.9 * 0.8 * 0.7, "lone triangle");
    assert_eq!(oracle.tail[0].len(), 1, "no completion events");

    // A triangle-free path: no triangles at all, expectations still hold.
    let mut b = GraphBuilder::new();
    for i in 0..5u32 {
        b.add_edge(i, i + 1, 0.3 + 0.1 * i as f64).unwrap();
    }
    let path = b.build();
    check_graph(&path, &[0.2]);
    assert_eq!(brute_force(&path).expected_triangles, 0.0);
}

#[test]
fn two_cliques_sharing_a_triangle_match_brute_force() {
    // K4 on {0,1,2,3} ∪ K4 on {0,1,2,4}: the shared triangle (0,1,2) has
    // support 2, every other triangle support 1 — exercises pmf entries
    // beyond k = 1.
    let mut b = GraphBuilder::new();
    let mut p = 0.4;
    for &(u, v) in &[
        (0, 1),
        (0, 2),
        (1, 2),
        (0, 3),
        (1, 3),
        (2, 3),
        (0, 4),
        (1, 4),
        (2, 4),
    ] {
        b.add_edge(u, v, p).unwrap();
        p = (p + 0.055).min(0.95);
    }
    let g = b.build();
    let support = SupportStructure::build(&g);
    let shared = support
        .triangle_index()
        .id_of_vertices(0, 1, 2)
        .expect("shared triangle");
    assert_eq!(support.support(shared), 2);
    check_graph(&g, &[0.001, 0.01, 0.1, 0.4]);
}

/// Applies `batch` through the incremental path at the nucleus and truss
/// ranks and verifies the *repaired* sweeps against the exhaustive
/// possible-world distribution of the updated graph — brute-force ground
/// truth, independent of every analytic code path the repair shares with
/// a fresh compute.
fn check_updated_sweep(graph: &UncertainGraph, batch: &[EdgeUpdate], thetas: &[f64]) {
    // Nucleus rank: repaired initial scores are the largest k whose
    // exhaustive tail Pr[△ ∧ ζ ≥ k] clears θ.
    let config = SweepConfig::exact(thetas.to_vec()).with_rank(Rank::Nucleus);
    let mut sweep = DecompSweep::compute(graph, &config).expect("valid sweep config");
    let outcome = sweep
        .apply_updates(graph, batch)
        .expect("fixture batches are valid");
    let updated = outcome.graph;
    assert!(updated.num_edges() <= 12, "keep updated graphs exhaustible");
    let oracle = brute_force(&updated);
    assert_eq!(sweep.num_elements(), oracle.tail.len());
    for (gi, &theta) in thetas.iter().enumerate() {
        let initial = sweep.initial_scores_at_index(gi);
        let scores = sweep.scores_at_index(gi);
        for (t, tail) in oracle.tail.iter().enumerate() {
            let brute_initial = (0..tail.len())
                .rev()
                .find(|&k| tail[k] >= theta)
                .unwrap_or(0) as u32;
            assert_eq!(
                initial[t], brute_initial,
                "repaired initial score of triangle {t} at theta {theta}"
            );
            assert!(
                scores[t] <= initial[t],
                "peeling must not raise repaired scores"
            );
        }
    }

    // Truss rank: repaired initial scores against the exhaustive
    // triangle-count tails of the updated graph's edges.
    let config = SweepConfig::exact(thetas.to_vec()).with_rank(Rank::Truss);
    let mut sweep = DecompSweep::compute(graph, &config).expect("valid sweep config");
    let outcome = sweep
        .apply_updates(graph, batch)
        .expect("fixture batches are valid");
    let tail = truss_world_tails(&outcome.graph);
    assert_eq!(sweep.num_elements(), tail.len());
    for (gi, &gamma) in thetas.iter().enumerate() {
        let initial = sweep.initial_scores_at_index(gi);
        let scores = sweep.scores_at_index(gi);
        for (e, edge_tail) in tail.iter().enumerate() {
            let brute_initial = (0..edge_tail.len())
                .rev()
                .find(|&k| edge_tail[k] >= gamma)
                .unwrap_or(0) as u32;
            assert_eq!(
                initial[e], brute_initial,
                "repaired gamma-support of edge {e} at gamma {gamma}"
            );
            assert!(
                scores[e] <= initial[e],
                "peeling must not raise repaired scores"
            );
        }
    }
}

#[test]
fn updated_fixtures_match_brute_force() {
    // K4(0.5) plus a pendant at vertex 4, reshaped around that vertex:
    // one chord deleted, one edge reweighted, three inserts forming
    // fresh triangles — the updated graph (9 edges) has a different
    // clique structure than the fixture.  Inserts may only touch
    // existing vertices, hence the pendant.
    let mut b = GraphBuilder::new();
    for &(u, v) in &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)] {
        b.add_edge(u, v, 0.5).unwrap();
    }
    let batch = vec![
        EdgeUpdate::Delete { u: 2, v: 3 },
        EdgeUpdate::Reweight { u: 0, v: 1, p: 0.9 },
        EdgeUpdate::Insert { u: 0, v: 4, p: 0.8 },
        EdgeUpdate::Insert { u: 1, v: 4, p: 0.7 },
        EdgeUpdate::Insert { u: 2, v: 4, p: 0.6 },
    ];
    check_updated_sweep(&b.build(), &batch, &[0.01, 0.05, 0.3]);

    // Bowtie: reweights only — same structure, different distribution.
    let mut b = GraphBuilder::new();
    for &(u, v, p) in &[
        (0u32, 1u32, 0.9),
        (0, 2, 0.8),
        (1, 2, 0.7),
        (1, 3, 0.6),
        (2, 3, 0.5),
    ] {
        b.add_edge(u, v, p).unwrap();
    }
    let batch = vec![
        EdgeUpdate::Reweight {
            u: 1,
            v: 2,
            p: 0.35,
        },
        EdgeUpdate::Reweight {
            u: 2,
            v: 3,
            p: 0.95,
        },
    ];
    check_updated_sweep(&b.build(), &batch, &[0.05, 0.25, 0.5]);

    // Triangle-free path closed into a fan: inserts create the first
    // triangles the sweep has ever seen.
    let mut b = GraphBuilder::new();
    for i in 0..4u32 {
        b.add_edge(i, i + 1, 0.6).unwrap();
    }
    let batch = vec![
        EdgeUpdate::Insert { u: 0, v: 2, p: 0.8 },
        EdgeUpdate::Insert { u: 1, v: 3, p: 0.7 },
        EdgeUpdate::Insert { u: 2, v: 4, p: 0.9 },
    ];
    check_updated_sweep(&b.build(), &batch, &[0.1, 0.5]);

    // Deleting down to triangle-free: the repaired nucleus sweep must
    // agree with an oracle that has no triangles left.
    let mut b = GraphBuilder::new();
    b.add_edge(0, 1, 0.9).unwrap();
    b.add_edge(1, 2, 0.8).unwrap();
    b.add_edge(0, 2, 0.7).unwrap();
    b.add_edge(2, 3, 0.6).unwrap();
    let batch = vec![EdgeUpdate::Delete { u: 0, v: 1 }];
    check_updated_sweep(&b.build(), &batch, &[0.1, 0.5]);
}

/// Strategy: a tiny graph plus a random valid batch whose application
/// keeps the updated graph within the exhaustive-enumeration budget.
fn arb_tiny_graph_and_batch() -> impl Strategy<Value = (UncertainGraph, Vec<EdgeUpdate>)> {
    arb_tiny_graph(6, 0.6).prop_flat_map(|g| {
        let n = g.num_vertices() as u32;
        let present: std::collections::HashSet<(u32, u32)> =
            g.edges().iter().map(|e| (e.u, e.v)).collect();
        let absent: Vec<(u32, u32)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .filter(|p| !present.contains(p))
            .collect();
        let m = g.num_edges();
        let k = absent.len();
        // Nested pairs of triples: the vendored proptest implements
        // Strategy for tuples only up to arity 5.
        (
            (
                Just(g),
                Just(absent),
                proptest::collection::vec(0.0f64..1.0, m.max(1)),
            ),
            (
                proptest::collection::vec(0.01f64..=1.0, m.max(1)),
                proptest::collection::vec(0.0f64..1.0, k.max(1)),
                proptest::collection::vec(0.01f64..=1.0, k.max(1)),
            ),
        )
            .prop_map(|((g, absent, action), (new_p, ins_coin, ins_p))| {
                let mut batch = Vec::new();
                let mut deletes = 0usize;
                for (i, e) in g.edges().iter().enumerate() {
                    if action[i] < 0.25 {
                        batch.push(EdgeUpdate::Delete { u: e.u, v: e.v });
                        deletes += 1;
                    } else if action[i] < 0.5 {
                        batch.push(EdgeUpdate::Reweight {
                            u: e.u,
                            v: e.v,
                            p: new_p[i],
                        });
                    }
                }
                // Inserts fill up to the 12-edge budget of the oracle.
                let mut budget = 12usize.saturating_sub(g.num_edges() - deletes);
                for (j, &(u, v)) in absent.iter().enumerate() {
                    if budget == 0 {
                        break;
                    }
                    if ins_coin[j] < 0.3 {
                        batch.push(EdgeUpdate::Insert { u, v, p: ins_p[j] });
                        budget -= 1;
                    }
                }
                (g, batch)
            })
    })
}

/// Strategy: a random probabilistic graph on up to `max_v` vertices whose
/// edge count stays within the exhaustive-enumeration budget.
fn arb_tiny_graph(max_v: u32, density: f64) -> impl Strategy<Value = UncertainGraph> {
    (4..=max_v)
        .prop_flat_map(move |n| {
            let pairs: Vec<(u32, u32)> = (0..n)
                .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
                .collect();
            let m = pairs.len();
            (
                Just(pairs),
                proptest::collection::vec(0.0f64..1.0, m),
                proptest::collection::vec(0.01f64..=1.0, m),
            )
        })
        .prop_map(move |(pairs, coin, probs)| {
            let mut b = GraphBuilder::new();
            let mut added = 0;
            for (i, (u, v)) in pairs.into_iter().enumerate() {
                if coin[i] < density && added < 12 {
                    b.add_edge(u, v, probs[i]).unwrap();
                    added += 1;
                }
            }
            b.build()
        })
}

proptest! {
    // Case count scales with PROPTEST_CASES (64 by default, 1024 in the
    // thorough CI job).
    #![proptest_config(ProptestConfig::default())]

    /// Every analytic quantity matches the brute-force possible-world
    /// distribution on random tiny graphs.
    #[test]
    fn random_tiny_graphs_match_brute_force(
        g in arb_tiny_graph(6, 0.75),
        theta in 0.02f64..0.8,
    ) {
        prop_assume!(g.num_edges() <= 12);
        check_graph(&g, &[theta]);
    }

    /// The (2,3) instance of the generic engine matches the brute-force
    /// triangle-count distribution on random tiny graphs.
    #[test]
    fn random_tiny_graphs_match_truss_oracle(
        g in arb_tiny_graph(6, 0.75),
        gamma in 0.02f64..0.8,
    ) {
        prop_assume!(g.num_edges() <= 12);
        check_truss_rank(&g, &[gamma]);
    }

    /// Repaired sweeps after a random update batch match the exhaustive
    /// possible-world distribution of the *updated* graph — the
    /// incremental path is pinned to ground truth, not merely to a
    /// from-scratch run of the same analytic code.
    #[test]
    fn random_update_batches_match_brute_force(
        case in arb_tiny_graph_and_batch(),
        theta in 0.02f64..0.8,
    ) {
        let (g, batch) = case;
        prop_assume!(g.num_edges() <= 12);
        check_updated_sweep(&g, &batch, &[0.01, theta]);
    }
}
