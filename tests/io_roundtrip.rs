//! Property-based round-trips for every IO format, plus malformed-input
//! coverage: each failure mode must surface as a typed
//! `ugraph::GraphError`, never a panic.
//!
//! * text: graph → edge list → graph is the identity (f64 `Display`
//!   round-trips exactly in Rust), and re-serializing the re-parsed graph
//!   reproduces the text;
//! * snapshot: graph → `.ugsnap` → graph is bit-identical, and the
//!   encoding is canonical (equal graphs produce equal bytes);
//! * konect: a graph serialized as weighted TSV re-parses identically
//!   under the column model.

use proptest::prelude::*;

use prob_nucleus_repro::ugraph::io::{
    open_snapshot, read_edge_list, read_konect, read_snapshot_bytes, write_edge_list,
    write_snapshot, EdgeProbabilityModel,
};
use prob_nucleus_repro::ugraph::{GraphBuilder, GraphError, SnapshotError, UncertainGraph};

/// Writes `bytes` to a unique temp file and returns its path; callers
/// remove it when done.
fn temp_snapshot(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "nd_io_roundtrip_{tag}_{}_{}.ugsnap",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&path, bytes).unwrap();
    path
}

/// Strategy: a random probabilistic graph built from an arbitrary subset
/// of vertex pairs with arbitrary valid probabilities.
fn arb_graph(max_v: u32) -> impl Strategy<Value = UncertainGraph> {
    (2..=max_v)
        .prop_flat_map(move |n| {
            let pairs: Vec<(u32, u32)> = (0..n)
                .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
                .collect();
            let m = pairs.len();
            (
                Just(pairs),
                proptest::collection::vec(0.0f64..1.0, m),
                // Probabilities over the full legal range (0, 1],
                // including exactly 1.0 and awkward tiny values.
                proptest::collection::vec(1e-9f64..=1.0, m),
            )
        })
        .prop_map(|(pairs, coin, probs)| {
            let mut b = GraphBuilder::new();
            for (i, (u, v)) in pairs.into_iter().enumerate() {
                if coin[i] < 0.45 {
                    b.add_edge(u, v, probs[i]).unwrap();
                }
            }
            b.build()
        })
}

fn to_text(graph: &UncertainGraph) -> String {
    let mut buf = Vec::new();
    write_edge_list(graph, &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

fn to_snapshot(graph: &UncertainGraph) -> Vec<u8> {
    let mut buf = Vec::new();
    write_snapshot(graph, &mut buf).unwrap();
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// text → graph → text and graph → text → graph are identities.
    #[test]
    fn text_round_trip_is_identity(g in arb_graph(12)) {
        prop_assume!(g.num_edges() > 0);
        let text = to_text(&g);
        let reparsed = read_edge_list(text.as_bytes()).unwrap();
        prop_assert_eq!(&reparsed, &g);
        for (a, b) in g.edges().iter().zip(reparsed.edges()) {
            prop_assert_eq!(a.p.to_bits(), b.p.to_bits());
        }
        // Second serialization is byte-identical: text form is canonical.
        prop_assert_eq!(to_text(&reparsed), text);
    }

    /// graph → snapshot → graph is bit-identical, and the encoding is
    /// canonical.
    #[test]
    fn snapshot_round_trip_is_identity(g in arb_graph(12)) {
        let bytes = to_snapshot(&g);
        let reloaded = read_snapshot_bytes(&bytes).unwrap();
        prop_assert_eq!(&reloaded, &g);
        for (a, b) in g.edges().iter().zip(reloaded.edges()) {
            prop_assert_eq!(a.p.to_bits(), b.p.to_bits());
        }
        prop_assert_eq!(to_snapshot(&reloaded), bytes);
    }

    /// A graph serialized as Konect-style weighted TSV re-parses
    /// identically under the column model.
    #[test]
    fn konect_round_trip_is_identity(g in arb_graph(12)) {
        prop_assume!(g.num_edges() > 0);
        let mut tsv = String::from("% ugraph konect round-trip\n");
        for e in g.edges() {
            tsv.push_str(&format!("{}\t{}\t{}\n", e.u, e.v, e.p));
        }
        let reparsed = read_konect(tsv.as_bytes(), &EdgeProbabilityModel::Column).unwrap();
        prop_assert_eq!(&reparsed, &g);
    }

    /// Truncating a snapshot anywhere yields a typed error, never a panic
    /// or a wrong graph.
    #[test]
    fn truncated_snapshots_error_cleanly(g in arb_graph(8), cut in 0.0f64..1.0) {
        let bytes = to_snapshot(&g);
        let len = ((bytes.len() - 1) as f64 * cut) as usize;
        let err = read_snapshot_bytes(&bytes[..len]).unwrap_err();
        prop_assert!(matches!(
            err,
            GraphError::Snapshot(
                SnapshotError::Truncated { .. } | SnapshotError::ChecksumMismatch { .. }
            )
        ), "{err:?}");
    }

    /// Flipping any single byte of a snapshot is detected.
    #[test]
    fn corrupted_snapshots_error_cleanly(g in arb_graph(8), pos in 0.0f64..1.0, bit in 0u8..8) {
        let mut bytes = to_snapshot(&g);
        let at = ((bytes.len() - 1) as f64 * pos) as usize;
        bytes[at] ^= 1 << bit;
        prop_assert!(read_snapshot_bytes(&bytes).is_err(), "flip at {at} undetected");
    }

    /// The zero-copy reader produces the same graph as the owned decoder,
    /// bit for bit, for any graph — and on platforms with mmap it
    /// actually takes the mapped path.
    #[test]
    fn open_snapshot_matches_owned_reader(g in arb_graph(12)) {
        let bytes = to_snapshot(&g);
        let path = temp_snapshot("map_eq", &bytes);
        let owned = read_snapshot_bytes(&bytes).unwrap();
        let opened = open_snapshot(&path).unwrap();
        prop_assert_eq!(opened.graph(), &owned);
        prop_assert_eq!(opened.graph(), &g);
        for (a, b) in g.edges().iter().zip(opened.graph().edges()) {
            prop_assert_eq!(a.p.to_bits(), b.p.to_bits());
        }
        #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
        prop_assert!(opened.is_mapped(), "zero-copy path not taken on a mmap platform");
        drop(opened);
        std::fs::remove_file(&path).ok();
    }

    /// A truncated snapshot file yields a typed error through
    /// `open_snapshot` — never a graph, so corrupt input cannot reach the
    /// zero-copy path.
    #[test]
    fn truncated_files_never_reach_the_zero_copy_path(g in arb_graph(8), cut in 0.0f64..1.0) {
        let bytes = to_snapshot(&g);
        let len = ((bytes.len() - 1) as f64 * cut) as usize;
        let path = temp_snapshot("map_trunc", &bytes[..len]);
        let err = open_snapshot(&path).unwrap_err();
        prop_assert!(matches!(
            err,
            GraphError::Snapshot(
                SnapshotError::Truncated { .. } | SnapshotError::ChecksumMismatch { .. }
            ) | GraphError::Io(_)
        ), "{err:?}");
        std::fs::remove_file(&path).ok();
    }

    /// Any single-bit corruption of a snapshot file is rejected by
    /// `open_snapshot` with a typed error — the checksum is verified
    /// through the mapping before anything is borrowed.
    #[test]
    fn corrupted_files_never_reach_the_zero_copy_path(
        g in arb_graph(8), pos in 0.0f64..1.0, bit in 0u8..8,
    ) {
        let mut bytes = to_snapshot(&g);
        let at = ((bytes.len() - 1) as f64 * pos) as usize;
        bytes[at] ^= 1 << bit;
        let path = temp_snapshot("map_flip", &bytes);
        prop_assert!(open_snapshot(&path).is_err(), "flip at {at} undetected via mmap");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn malformed_text_inputs_are_typed_errors() {
    // Out-of-range probability.
    for text in ["0 1 1.0001\n", "0 1 0\n", "0 1 -1\n", "0 1 nan\n"] {
        assert!(
            matches!(
                read_edge_list(text.as_bytes()).unwrap_err(),
                GraphError::InvalidProbability { .. }
            ),
            "{text:?}"
        );
    }
    // Self-loop.
    assert!(matches!(
        read_edge_list("7 7 0.5\n".as_bytes()).unwrap_err(),
        GraphError::SelfLoop { vertex: 7 }
    ));
    // Duplicate edge (either orientation).
    assert!(matches!(
        read_edge_list("1 2 0.5\n2 1 0.5\n".as_bytes()).unwrap_err(),
        GraphError::DuplicateEdge { edge: (1, 2) }
    ));
    // Syntax problems carry the line number.
    match read_edge_list("0 1 0.5\n0 two 0.5\n".as_bytes()).unwrap_err() {
        GraphError::Parse { line, .. } => assert_eq!(line, 2),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn malformed_konect_inputs_are_typed_errors() {
    let m = EdgeProbabilityModel::Column;
    assert!(matches!(
        read_konect("3 3 0.5\n".as_bytes(), &m).unwrap_err(),
        GraphError::SelfLoop { vertex: 3 }
    ));
    // Aggregated weight exceeding 1 is not a probability under `column`.
    assert!(matches!(
        read_konect("1 2 0.9\n1 2 0.9\n".as_bytes(), &m).unwrap_err(),
        GraphError::InvalidProbability { .. }
    ));
    assert!(matches!(
        read_konect("1 2 0.5 0 extra\n".as_bytes(), &m).unwrap_err(),
        GraphError::Parse { .. }
    ));
}

/// Regression: an updated in-memory graph persisted at the dataset cache
/// path must not round-trip through a cache fingerprint that matches the
/// pre-update snapshot.  The v2 source tag makes the cache layer reject
/// the impostor and re-parse the source.
#[test]
fn updated_graph_written_at_cache_path_does_not_poison_load_cached() {
    use prob_nucleus_repro::nd_datasets::ExternalDataset;
    use prob_nucleus_repro::nucleus::EdgeUpdate;
    use prob_nucleus_repro::ugraph::io::EdgeProbabilityModel as Model;
    use prob_nucleus_repro::ugraph::io::{write_snapshot_file, InputFormat};
    use prob_nucleus_repro::ugraph::{apply_edge_updates, io};

    let dir = std::env::temp_dir().join("nd_io_roundtrip_update_staleness");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let source = dir.join("graph.txt");
    std::fs::write(&source, "0 1 0.5\n1 2 0.75\n0 2 1\n").unwrap();

    let ds = ExternalDataset::new(&source, InputFormat::Snap, Model::Column);
    let original = ds.load_cached().unwrap();
    let cache = ds.snapshot_cache_path();
    assert!(cache.exists());

    // Apply an update batch and persist the updated graph at the cache
    // path — exactly the stale-write hazard.
    let delta =
        apply_edge_updates(&original, &[EdgeUpdate::Reweight { u: 0, v: 1, p: 0.1 }]).unwrap();
    write_snapshot_file(&delta.graph, &cache).unwrap();

    // The source file is unchanged, so its fingerprint (and thus the
    // cache *name*) still matches — but the tag does not, so the cache
    // layer must re-parse the original source.
    let reloaded = ds.load_cached().unwrap();
    assert_eq!(reloaded, original);
    assert_eq!(reloaded.edge_probability(0, 1), Some(0.5));

    // The healed cache carries the fingerprint tag again.
    let (_, tag) = io::read_snapshot_file_tagged(&cache).unwrap();
    assert_ne!(tag, io::UNTAGGED);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_header_failures_are_typed_errors() {
    let mut b = GraphBuilder::new();
    b.add_edge(0, 1, 0.5).unwrap();
    let bytes = to_snapshot(&b.build());

    let mut bad_magic = bytes.clone();
    bad_magic[2] = b'X';
    assert!(matches!(
        read_snapshot_bytes(&bad_magic).unwrap_err(),
        GraphError::Snapshot(SnapshotError::BadMagic)
    ));

    let mut bad_version = bytes.clone();
    bad_version[8..12].copy_from_slice(&7u32.to_le_bytes());
    assert!(matches!(
        read_snapshot_bytes(&bad_version).unwrap_err(),
        GraphError::Snapshot(SnapshotError::UnsupportedVersion(7))
    ));

    let mut bad_sum = bytes.clone();
    let last = bad_sum.len() - 1;
    bad_sum[last] ^= 0xFF;
    assert!(matches!(
        read_snapshot_bytes(&bad_sum).unwrap_err(),
        GraphError::Snapshot(SnapshotError::ChecksumMismatch { .. })
    ));

    let mut trailing = bytes;
    trailing.push(0);
    assert!(matches!(
        read_snapshot_bytes(&trailing).unwrap_err(),
        GraphError::Snapshot(SnapshotError::Corrupt(_))
    ));
}
