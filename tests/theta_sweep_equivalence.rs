//! Differential + metamorphic test suite for the θ-sweep index.
//!
//! Two contracts, enforced on random graphs:
//!
//! * **Differential**: every per-θ slice of a [`ThetaSweep`] — scores,
//!   initial scores, method counts and perf counters — must be
//!   **bit-identical** to an independent
//!   [`LocalNucleusDecomposition::compute`] at that θ, for the exact-DP
//!   and the hybrid scorer, at 1, 2 and 8 worker threads.  The sweep may
//!   amortize the support build and reschedule work across grid points,
//!   but it must never change a single observable result.
//!
//! * **Metamorphic monotonicity**: Definition 5 gives
//!   `Pr[△ ∧ ζ ≥ k] ≥ θ` — a larger θ can only shrink the qualifying
//!   set, so κ_θ(△) (and, for the monotone DP scorer, ν_θ(△)) is
//!   non-increasing in θ.  Every score row of the index must therefore
//!   be sorted non-increasing across the grid.  For the hybrid scorer
//!   the *initial* scores share the guarantee (the approximation tail of
//!   a fixed alive set is a fixed function of k, so its max-k is
//!   monotone in θ); final hybrid scores have no such proof, so they are
//!   only checked differentially.
//!
//! Case counts scale with `PROPTEST_CASES` (64 locally, 1024 in the
//! thorough CI job).

use proptest::prelude::*;

use prob_nucleus_repro::nucleus::{
    LocalConfig, LocalNucleusDecomposition, SweepConfig, ThetaSweep,
};
use prob_nucleus_repro::ugraph::{GraphBuilder, Parallelism, UncertainGraph};

/// Thread counts every property is exercised at.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// A random probabilistic graph dense enough to grow 4-cliques.
fn arb_graph(max_v: u32, density: f64) -> impl Strategy<Value = UncertainGraph> {
    (4..=max_v)
        .prop_flat_map(move |n| {
            let pairs: Vec<(u32, u32)> = (0..n)
                .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
                .collect();
            let m = pairs.len();
            (
                Just(pairs),
                proptest::collection::vec(0.0f64..1.0, m),
                proptest::collection::vec(0.01f64..=1.0, m),
            )
        })
        .prop_map(move |(pairs, coin, probs)| {
            let mut b = GraphBuilder::new();
            for (i, (u, v)) in pairs.into_iter().enumerate() {
                if coin[i] < density {
                    b.add_edge(u, v, probs[i]).unwrap();
                }
            }
            b.build()
        })
}

/// A valid θ grid: 1..=5 values in (0, 1], sorted strictly ascending.
fn arb_grid() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..=1.0, 1..=5).prop_map(|mut thetas| {
        thetas.sort_by(|a, b| a.partial_cmp(b).expect("grid values are finite"));
        thetas.dedup();
        thetas
    })
}

/// The differential check: one sweep vs one independent decomposition
/// per grid point, at every thread count.
fn assert_sweep_matches_independent_runs(
    g: &UncertainGraph,
    grid: &[f64],
    config_for: impl Fn(Vec<f64>) -> SweepConfig,
) {
    // The independent oracle runs sequentially; per-θ results are
    // thread-count-independent anyway (tests/parallel_equivalence.rs).
    let solo: Vec<LocalNucleusDecomposition> = grid
        .iter()
        .map(|&theta| {
            let sweep_cfg = config_for(vec![theta]);
            let local = LocalConfig {
                theta,
                method: sweep_cfg.method,
                parallelism: Parallelism::Sequential,
            };
            LocalNucleusDecomposition::compute(g, &local).expect("valid config")
        })
        .collect();

    for threads in THREAD_COUNTS {
        let config = config_for(grid.to_vec()).with_parallelism(Parallelism::fixed(threads));
        let index = ThetaSweep::compute(g, &config).expect("valid sweep config");
        prop_assert_eq!(index.support_builds(), 1, "support built exactly once");
        prop_assert_eq!(index.grid_len(), grid.len());
        for (gi, (&theta, solo)) in grid.iter().zip(&solo).enumerate() {
            prop_assert_eq!(
                index.scores_at(theta).expect("theta is a grid point"),
                solo.scores(),
                "scores at theta {} (grid point {}, threads {})",
                theta,
                gi,
                threads
            );
            prop_assert_eq!(
                index.initial_scores_at(theta).expect("grid point"),
                solo.initial_scores()
            );
            prop_assert_eq!(
                index.method_counts_at(theta).expect("grid point"),
                solo.method_counts()
            );
            prop_assert_eq!(
                index.peel_stats_at(theta).expect("grid point"),
                solo.peel_stats()
            );
        }
    }
}

proptest! {
    // 64 cases by default, scaled up via PROPTEST_CASES in CI's thorough
    // job.
    #![proptest_config(ProptestConfig::default())]

    /// Exact-DP sweeps are bit-identical to independent per-θ
    /// decompositions at every thread count.
    #[test]
    fn dp_sweep_bit_identical_to_independent_runs(
        g in arb_graph(10, 0.75),
        grid in arb_grid(),
    ) {
        assert_sweep_matches_independent_runs(&g, &grid, SweepConfig::exact);
    }

    /// Hybrid-scorer sweeps are bit-identical to independent per-θ
    /// decompositions at every thread count.
    #[test]
    fn hybrid_sweep_bit_identical_to_independent_runs(
        g in arb_graph(9, 0.8),
        grid in arb_grid(),
    ) {
        assert_sweep_matches_independent_runs(&g, &grid, SweepConfig::approximate);
    }

    /// Metamorphic: exact-DP score rows (final and initial) are
    /// non-increasing in θ for every triangle.
    #[test]
    fn dp_sweep_rows_are_monotone_in_theta(
        g in arb_graph(10, 0.75),
        grid in arb_grid(),
    ) {
        let index = ThetaSweep::compute(&g, &SweepConfig::exact(grid.clone()))
            .expect("valid sweep config");
        prop_assert!(index.is_monotone_in_theta());
        for t in 0..index.num_triangles() {
            for w in 0..grid.len().saturating_sub(1) {
                prop_assert!(
                    index.scores_at_index(w + 1)[t] <= index.scores_at_index(w)[t],
                    "final score of triangle {} rose from theta {} to {}",
                    t, grid[w], grid[w + 1]
                );
                prop_assert!(
                    index.initial_scores_at_index(w + 1)[t]
                        <= index.initial_scores_at_index(w)[t],
                    "initial score of triangle {} rose from theta {} to {}",
                    t, grid[w], grid[w + 1]
                );
            }
        }
    }

    /// Metamorphic: hybrid *initial* scores are non-increasing in θ (the
    /// per-triangle approximation tail is fixed, so its max-k is
    /// monotone in the threshold).
    #[test]
    fn hybrid_initial_rows_are_monotone_in_theta(
        g in arb_graph(9, 0.8),
        grid in arb_grid(),
    ) {
        let index = ThetaSweep::compute(&g, &SweepConfig::approximate(grid.clone()))
            .expect("valid sweep config");
        for t in 0..index.num_triangles() {
            for w in 0..grid.len().saturating_sub(1) {
                prop_assert!(
                    index.initial_scores_at_index(w + 1)[t]
                        <= index.initial_scores_at_index(w)[t],
                    "hybrid initial score of triangle {} rose from theta {} to {}",
                    t, grid[w], grid[w + 1]
                );
            }
        }
    }
}
