//! End-to-end smoke test of the `prob_nucleus_repro` facade re-exports:
//! builds a small probabilistic graph through `ugraph`, runs decompositions
//! from `nucleus`, `detdecomp` and `probdecomp`, and touches a synthetic
//! dataset from `nd_datasets` — all through the umbrella crate's paths.

use prob_nucleus_repro::detdecomp::NucleusDecomposition;
use prob_nucleus_repro::nd_datasets::{PaperDataset, Scale};
use prob_nucleus_repro::nucleus::{
    LocalConfig, LocalNucleusDecomposition, NucleusError, SweepConfig, ThetaGridError, ThetaSweep,
};
use prob_nucleus_repro::probdecomp::EtaCoreDecomposition;
use prob_nucleus_repro::ugraph::{GraphBuilder, Triangle};

/// A probabilistic K5 with p = 0.9 on every edge.
fn k5(p: f64) -> prob_nucleus_repro::ugraph::UncertainGraph {
    let mut b = GraphBuilder::new();
    for u in 0..5u32 {
        for v in (u + 1)..5u32 {
            b.add_edge(u, v, p).unwrap();
        }
    }
    b.build()
}

#[test]
fn facade_local_decomposition_known_score() {
    let graph = k5(0.9);
    assert_eq!(graph.num_vertices(), 5);
    assert_eq!(graph.num_edges(), 10);

    // Every triangle of K5 is in two 4-cliques; with p = 0.9 each clique
    // completes with probability 0.9³ = 0.729 and the triangle exists with
    // probability 0.9³, so Pr[ζ ≥ 2] · Pr(△) = 0.729³ ≈ 0.387 ≥ 0.2:
    // all ten triangles reach the deterministic maximum score of 2.
    let local = LocalNucleusDecomposition::compute(&graph, &LocalConfig::exact(0.2)).unwrap();
    assert_eq!(local.num_triangles(), 10);
    assert_eq!(local.max_score(), 2);
    assert!(local.scores().iter().all(|&s| s == 2));
    assert_eq!(local.score_of(&Triangle::new(0, 1, 2)), Some(2));

    // The probabilistic scores coincide with the deterministic nucleusness
    // here, and the single extracted 2-nucleus is the whole K5.
    let det = NucleusDecomposition::compute(&graph);
    for (id, tri) in local.triangle_index().iter() {
        assert_eq!(local.score(id), det.nucleusness_of(&tri).unwrap());
    }
    let nuclei = local.k_nuclei(&graph, 2);
    assert_eq!(nuclei.len(), 1);
    assert_eq!(nuclei[0].num_vertices(), 5);
    assert_eq!(nuclei[0].cliques.len(), 5);

    // At a threshold above any attainable probability nothing survives.
    let strict = LocalNucleusDecomposition::compute(&graph, &LocalConfig::exact(0.999)).unwrap();
    assert_eq!(strict.max_score(), 0);
}

#[test]
fn facade_theta_sweep_index() {
    let graph = k5(0.9);

    // The θ-sweep re-exports: one support build answering a grid of
    // thresholds, bit-identical to independent runs at each grid point.
    let index = ThetaSweep::compute(&graph, &SweepConfig::exact(vec![0.2, 0.999])).unwrap();
    assert_eq!(index.support_builds(), 1);
    assert_eq!(index.max_score_at(0.2), Some(2));
    assert_eq!(index.max_score_at(0.999), Some(0));
    assert!(index.is_monotone_in_theta());
    let solo = LocalNucleusDecomposition::compute(&graph, &LocalConfig::exact(0.2)).unwrap();
    assert_eq!(index.scores_at(0.2).unwrap(), solo.scores());
    assert_eq!(index.k_nuclei_at(&graph, 0.2, 2).unwrap().len(), 1);

    // Typed grid validation surfaces through the facade too.
    assert_eq!(
        ThetaSweep::compute(&graph, &SweepConfig::exact(vec![0.9, 0.2])).unwrap_err(),
        NucleusError::InvalidThetaGrid(ThetaGridError::NotSorted { index: 1 })
    );
}

#[test]
fn facade_baselines_and_datasets() {
    let graph = k5(0.9);

    // (k,η)-core baseline via the facade: every vertex of K5 has 4
    // neighbours, each present with probability 0.9, so the 3-core at
    // η = 0.5 contains all vertices.
    let core = EtaCoreDecomposition::try_compute(&graph, 0.5).unwrap();
    assert!(core.core_numbers().iter().all(|&c| c >= 3));

    // Synthetic dataset generation is seeded and reproducible.
    let a = PaperDataset::Krogan.generate(Scale::Tiny, 42);
    let b = PaperDataset::Krogan.generate(Scale::Tiny, 42);
    assert!(a.num_edges() > 0);
    assert_eq!(a.num_edges(), b.num_edges());
    assert_eq!(a.num_vertices(), b.num_vertices());
    let row = prob_nucleus_repro::nd_datasets::table1_row(PaperDataset::Krogan, &a);
    assert_eq!(row.name, "krogan");
}
