//! Differential test suite for incremental edge-update maintenance.
//!
//! The contract under test: [`DecompSweep::apply_updates`] — validate a
//! batch, repair the support, refresh every grid point through the
//! bounded re-peel — must be **bit-identical** to throwing the sweep
//! away and recomputing from scratch on the updated graph.  Enforced on
//! random graphs with random valid-by-construction batches (mixes of
//! inserts, deletes and reweights, including the empty batch):
//!
//! * at every rank — (1,2) core, (2,3) truss, (3,4) nucleus — with the
//!   exact-DP scorer, at 1, 2 and 8 worker threads: scores, initial
//!   scores and method counts per grid point, plus the repair's own
//!   [`UpdateReport`] and per-point [`PeelStats`] identical across
//!   thread counts (the repair is deterministic, not just its results);
//! * for the hybrid scorer at the nucleus rank (whose points are
//!   recomputed on the repaired support rather than regionally
//!   repaired, but must match a fresh hybrid sweep bit for bit);
//! * through [`DecompHandle::apply_updates`], the resident-service
//!   entry point, whose repaired handle must answer per-threshold
//!   queries identically to a handle built fresh on the updated graph.
//!
//! Adversarial deterministic cases ride along: a batch that deletes
//! every edge, a rejected batch that must leave the sweep untouched,
//! and the empty batch as a true noop.
//!
//! Case counts scale with `PROPTEST_CASES` (64 locally, 1024 in the
//! thorough CI job).

use proptest::prelude::*;

use prob_nucleus_repro::nucleus::{
    DecompConfig, DecompHandle, DecompSweep, NucleusError, Rank, SweepConfig,
};
use prob_nucleus_repro::ugraph::{
    EdgeUpdate, GraphBuilder, Parallelism, UncertainGraph, UpdateError,
};

/// Thread counts every property is exercised at.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// The grid every sweep maintains across its update.
const GRID: [f64; 3] = [0.15, 0.5, 0.9];

/// A random probabilistic graph dense enough to grow 4-cliques.
fn arb_graph(max_v: u32, density: f64) -> impl Strategy<Value = UncertainGraph> {
    (4..=max_v)
        .prop_flat_map(move |n| {
            let pairs: Vec<(u32, u32)> = (0..n)
                .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
                .collect();
            let m = pairs.len();
            (
                Just(pairs),
                proptest::collection::vec(0.0f64..1.0, m),
                proptest::collection::vec(0.01f64..=1.0, m),
            )
        })
        .prop_map(move |(pairs, coin, probs)| {
            let mut b = GraphBuilder::new();
            for (i, (u, v)) in pairs.into_iter().enumerate() {
                if coin[i] < density {
                    b.add_edge(u, v, probs[i]).unwrap();
                }
            }
            b.build()
        })
}

/// A graph plus a valid-by-construction update batch: every existing
/// edge is independently deleted (p≈0.2) or reweighted (p≈0.2), every
/// absent pair independently inserted (p≈0.25).  Each pair appears at
/// most once, so the batch is valid in any order; the empty batch (a
/// noop) occurs naturally.
fn arb_graph_and_batch(
    max_v: u32,
    density: f64,
) -> impl Strategy<Value = (UncertainGraph, Vec<EdgeUpdate>)> {
    arb_graph(max_v, density).prop_flat_map(|g| {
        let n = g.num_vertices() as u32;
        let present: std::collections::HashSet<(u32, u32)> =
            g.edges().iter().map(|e| (e.u, e.v)).collect();
        let absent: Vec<(u32, u32)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .filter(|p| !present.contains(p))
            .collect();
        let m = g.num_edges();
        let k = absent.len();
        // Nested pairs of triples: the vendored proptest implements
        // Strategy for tuples only up to arity 5.
        (
            (
                Just(g),
                Just(absent),
                proptest::collection::vec(0.0f64..1.0, m.max(1)),
            ),
            (
                proptest::collection::vec(0.01f64..=1.0, m.max(1)),
                proptest::collection::vec(0.0f64..1.0, k.max(1)),
                proptest::collection::vec(0.01f64..=1.0, k.max(1)),
            ),
        )
            .prop_map(|((g, absent, action), (new_p, ins_coin, ins_p))| {
                let mut batch = Vec::new();
                for (i, e) in g.edges().iter().enumerate() {
                    if action[i] < 0.2 {
                        batch.push(EdgeUpdate::Delete { u: e.u, v: e.v });
                    } else if action[i] < 0.4 {
                        batch.push(EdgeUpdate::Reweight {
                            u: e.u,
                            v: e.v,
                            p: new_p[i],
                        });
                    }
                }
                for (j, &(u, v)) in absent.iter().enumerate() {
                    if ins_coin[j] < 0.25 {
                        batch.push(EdgeUpdate::Insert { u, v, p: ins_p[j] });
                    }
                }
                (g, batch)
            })
    })
}

/// The differential check at one rank: apply the batch incrementally at
/// every thread count, recompute from scratch on the updated graph, and
/// demand bit-identity of every observable — plus determinism of the
/// repair's own counters across thread counts.
fn assert_update_matches_recompute(
    g: &UncertainGraph,
    batch: &[EdgeUpdate],
    config_for: impl Fn(Vec<f64>) -> SweepConfig,
) {
    let base = config_for(GRID.to_vec());
    let mut reference: Option<(prob_nucleus_repro::nucleus::UpdateReport, Vec<_>)> = None;
    for threads in THREAD_COUNTS {
        let config = base.clone().with_parallelism(Parallelism::fixed(threads));
        let mut sweep = DecompSweep::compute(g, &config).expect("valid sweep config");
        let outcome = sweep.apply_updates(g, batch).expect("batch is valid");

        // The from-scratch oracle runs sequentially; fresh results are
        // thread-count-independent anyway (tests/parallel_equivalence.rs).
        let fresh = DecompSweep::compute(
            &outcome.graph,
            &base.clone().with_parallelism(Parallelism::Sequential),
        )
        .expect("valid sweep config");
        prop_assert_eq!(sweep.num_elements(), fresh.num_elements());
        for (gi, theta) in GRID.iter().enumerate() {
            prop_assert_eq!(
                sweep.scores_at_index(gi),
                fresh.scores_at_index(gi),
                "scores at threshold {} diverged from the rebuild ({} threads, batch {:?})",
                theta,
                threads,
                batch
            );
            prop_assert_eq!(
                sweep.initial_scores_at_index(gi),
                fresh.initial_scores_at_index(gi),
                "initial scores at threshold {} diverged ({} threads)",
                theta,
                threads
            );
            prop_assert_eq!(
                sweep.method_counts_at_index(gi),
                fresh.method_counts_at_index(gi)
            );
        }

        // The repair itself is deterministic: identical counters and
        // per-point peel stats at every thread count.
        let stats = sweep.peel_stats();
        match &reference {
            None => reference = Some((outcome.report, stats)),
            Some((report, ref_stats)) => {
                prop_assert_eq!(report, &outcome.report, "UpdateReport varies with threads");
                prop_assert_eq!(ref_stats, &stats, "repair PeelStats vary with threads");
            }
        }
    }
}

proptest! {
    // 64 cases by default, scaled up via PROPTEST_CASES in CI's thorough
    // job.
    #![proptest_config(ProptestConfig::default())]

    /// Exact-DP incremental updates are bit-identical to a from-scratch
    /// sweep at the core rank, for every thread count.
    #[test]
    fn dp_core_update_bit_identical_to_recompute(
        case in arb_graph_and_batch(10, 0.6),
    ) {
        let (g, batch) = case;
        assert_update_matches_recompute(&g, &batch, |thetas| {
            SweepConfig::exact(thetas).with_rank(Rank::Core)
        });
    }

    /// Same contract at the truss rank (elements are edges: the batch
    /// creates and destroys elements, exercising the id remap).
    #[test]
    fn dp_truss_update_bit_identical_to_recompute(
        case in arb_graph_and_batch(10, 0.65),
    ) {
        let (g, batch) = case;
        assert_update_matches_recompute(&g, &batch, |thetas| {
            SweepConfig::exact(thetas).with_rank(Rank::Truss)
        });
    }

    /// Same contract at the nucleus rank (elements are triangles, cells
    /// are 4-cliques — the deepest structural repair).
    #[test]
    fn dp_nucleus_update_bit_identical_to_recompute(
        case in arb_graph_and_batch(9, 0.75),
    ) {
        let (g, batch) = case;
        assert_update_matches_recompute(&g, &batch, |thetas| {
            SweepConfig::exact(thetas).with_rank(Rank::Nucleus)
        });
    }

    /// Hybrid-scorer sweeps recompute their points on the repaired
    /// support; the result must still match a fresh hybrid sweep on the
    /// updated graph bit for bit.
    #[test]
    fn hybrid_nucleus_update_bit_identical_to_recompute(
        case in arb_graph_and_batch(8, 0.8),
    ) {
        let (g, batch) = case;
        let mut sweep = DecompSweep::compute(&g, &SweepConfig::approximate(GRID.to_vec()))
            .expect("valid sweep config");
        let outcome = sweep.apply_updates(&g, &batch).expect("batch is valid");
        prop_assert_eq!(outcome.report.repaired_points, 0);
        prop_assert_eq!(outcome.report.recomputed_points, GRID.len());
        let fresh = DecompSweep::compute(&outcome.graph, &SweepConfig::approximate(GRID.to_vec()))
            .expect("valid sweep config");
        for gi in 0..GRID.len() {
            prop_assert_eq!(sweep.scores_at_index(gi), fresh.scores_at_index(gi));
            prop_assert_eq!(
                sweep.initial_scores_at_index(gi),
                fresh.initial_scores_at_index(gi)
            );
            prop_assert_eq!(
                sweep.method_counts_at_index(gi),
                fresh.method_counts_at_index(gi)
            );
        }
    }

    /// The resident-service entry point: a handle repaired by
    /// [`DecompHandle::apply_updates`] answers per-threshold queries
    /// identically to a handle built fresh on the updated graph.
    #[test]
    fn handle_update_answers_like_a_fresh_handle(
        case in arb_graph_and_batch(10, 0.65),
    ) {
        let (g, batch) = case;
        for rank in [Rank::Core, Rank::Truss, Rank::Nucleus] {
            let handle = DecompHandle::build(&g, rank, Parallelism::Sequential);
            let updated = handle
                .apply_updates(&g, &batch, Parallelism::Sequential)
                .expect("batch is valid");
            let fresh = DecompHandle::build(&updated.graph, rank, Parallelism::Sequential);
            prop_assert_eq!(updated.handle.num_elements(), fresh.num_elements());
            for &theta in &GRID {
                let config = DecompConfig {
                    rank,
                    ..DecompConfig::core(theta)
                };
                let a = updated.handle.compute_at(&config).expect("valid config");
                let b = fresh.compute_at(&config).expect("valid config");
                prop_assert_eq!(
                    a.scores(),
                    b.scores(),
                    "{} handle diverged at threshold {}",
                    rank,
                    theta
                );
                prop_assert_eq!(a.initial_scores(), b.initial_scores());
            }
        }
    }

    /// A rejected batch must leave the sweep untouched — same scores,
    /// same grid, usable for further updates.
    #[test]
    fn rejected_batches_leave_the_sweep_untouched(
        case in arb_graph_and_batch(9, 0.65),
    ) {
        let (g, mut batch) = case;
        // Poison the tail of an otherwise valid batch.
        batch.push(EdgeUpdate::Delete { u: 0, v: 999 });
        let config = SweepConfig::exact(GRID.to_vec()).with_rank(Rank::Truss);
        let mut sweep = DecompSweep::compute(&g, &config).expect("valid sweep config");
        let before: Vec<Vec<u32>> = (0..GRID.len())
            .map(|gi| sweep.scores_at_index(gi).to_vec())
            .collect();
        match sweep.apply_updates(&g, &batch) {
            Err(NucleusError::Update(UpdateError::OffGraphEndpoint { vertex: 999, .. })) => {}
            other => prop_assert!(false, "expected OffGraphEndpoint, got {:?}", other.err()),
        }
        for (gi, old) in before.iter().enumerate() {
            prop_assert_eq!(sweep.scores_at_index(gi), &old[..]);
        }
        // Still fully functional: the valid prefix applies cleanly.
        batch.pop();
        let outcome = sweep.apply_updates(&g, &batch).expect("valid prefix applies");
        let fresh = DecompSweep::compute(&outcome.graph, &config).expect("valid sweep config");
        for gi in 0..GRID.len() {
            prop_assert_eq!(sweep.scores_at_index(gi), fresh.scores_at_index(gi));
        }
    }
}

/// Builds the deterministic 6-clique fixture the adversarial cases use.
fn clique(n: u32, p: f64) -> UncertainGraph {
    let mut b = GraphBuilder::new();
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v, p).unwrap();
        }
    }
    b.build()
}

#[test]
fn deleting_every_edge_empties_every_rank() {
    let g = clique(6, 0.8);
    let batch: Vec<EdgeUpdate> = g
        .edges()
        .iter()
        .map(|e| EdgeUpdate::Delete { u: e.u, v: e.v })
        .collect();
    for rank in [Rank::Core, Rank::Truss, Rank::Nucleus] {
        let config = SweepConfig::exact(GRID.to_vec()).with_rank(rank);
        let mut sweep = DecompSweep::compute(&g, &config).expect("valid sweep config");
        let outcome = sweep
            .apply_updates(&g, &batch)
            .expect("full deletion is valid");
        assert_eq!(outcome.graph.num_edges(), 0);
        assert_eq!(outcome.report.removed_edges, 15);
        let fresh = DecompSweep::compute(&outcome.graph, &config).expect("valid sweep config");
        assert_eq!(sweep.num_elements(), fresh.num_elements(), "{rank}");
        for gi in 0..GRID.len() {
            assert_eq!(
                sweep.scores_at_index(gi),
                fresh.scores_at_index(gi),
                "{rank}"
            );
        }
        // Core elements survive (vertices are fixed) with score 0; the
        // edge and triangle ranks lose every element.
        match rank {
            Rank::Core => {
                assert_eq!(sweep.num_elements(), 6);
                assert!(sweep.scores_at_index(0).iter().all(|&s| s == 0));
            }
            _ => assert_eq!(sweep.num_elements(), 0),
        }
    }
}

#[test]
fn empty_batch_is_a_true_noop() {
    let g = clique(5, 0.7);
    let config = SweepConfig::exact(GRID.to_vec()).with_rank(Rank::Nucleus);
    let mut sweep = DecompSweep::compute(&g, &config).expect("valid sweep config");
    let before: Vec<Vec<u32>> = (0..GRID.len())
        .map(|gi| sweep.scores_at_index(gi).to_vec())
        .collect();
    let outcome = sweep.apply_updates(&g, &[]).expect("empty batch is valid");
    assert_eq!(outcome.report.inserted_edges, 0);
    assert_eq!(outcome.report.removed_edges, 0);
    assert_eq!(outcome.report.reweighted_edges, 0);
    assert_eq!(outcome.report.affected_elements, 0);
    assert_eq!(outcome.report.region_elements, 0);
    assert_eq!(outcome.graph.num_edges(), 5 * 4 / 2);
    for (gi, old) in before.iter().enumerate() {
        assert_eq!(sweep.scores_at_index(gi), &old[..]);
    }
}

#[test]
fn conflicting_batches_are_rejected_atomically() {
    let g = clique(5, 0.7);
    let config = SweepConfig::exact(GRID.to_vec()).with_rank(Rank::Truss);
    let mut sweep = DecompSweep::compute(&g, &config).expect("valid sweep config");
    let before = sweep.scores_at_index(0).to_vec();
    // Double delete of the same edge: the second one hits a missing edge.
    let batch = [
        EdgeUpdate::Delete { u: 0, v: 1 },
        EdgeUpdate::Delete { u: 0, v: 1 },
    ];
    match sweep.apply_updates(&g, &batch) {
        Err(NucleusError::Update(UpdateError::EdgeMissing { index: 1, .. })) => {}
        other => panic!("expected EdgeMissing at index 1, got {:?}", other.err()),
    }
    // Insert of an edge that already exists.
    let batch = [EdgeUpdate::Insert { u: 0, v: 1, p: 0.5 }];
    match sweep.apply_updates(&g, &batch) {
        Err(NucleusError::Update(UpdateError::EdgeExists { index: 0, .. })) => {}
        other => panic!("expected EdgeExists at index 0, got {:?}", other.err()),
    }
    assert_eq!(sweep.scores_at_index(0), &before[..]);
}
