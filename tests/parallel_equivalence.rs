//! Property-based equivalence suite for the parallel substrate.
//!
//! The contract of `ugraph::par` is that every parallel result is
//! **bit-identical** to the sequential one — same element order, same
//! floating-point bit patterns — for every thread count.  These properties
//! check that contract end to end on random uncertain graphs for the
//! triangle enumerator, the 4-clique enumerator, the support structure and
//! the full local decomposition, at 1, 2 and 8 worker threads.

use proptest::prelude::*;

use prob_nucleus_repro::nucleus::{LocalConfig, LocalNucleusDecomposition, SupportStructure};
use prob_nucleus_repro::ugraph::cliques::{count_four_cliques, count_four_cliques_with};
use prob_nucleus_repro::ugraph::par::{par_extend, par_map};
use prob_nucleus_repro::ugraph::triangles::{enumerate_triangles, enumerate_triangles_with};
use prob_nucleus_repro::ugraph::{
    FourCliqueEnumerator, GraphBuilder, Parallelism, TriangleIndex, UncertainGraph,
};

/// Thread counts every property is exercised at.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Strategy: a random probabilistic graph dense enough that triangles and
/// 4-cliques actually appear.
fn arb_graph(max_v: u32, density: f64) -> impl Strategy<Value = UncertainGraph> {
    (4..=max_v)
        .prop_flat_map(move |n| {
            let pairs: Vec<(u32, u32)> = (0..n)
                .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
                .collect();
            let m = pairs.len();
            (
                Just(pairs),
                proptest::collection::vec(0.0f64..1.0, m),
                proptest::collection::vec(0.01f64..=1.0, m),
            )
        })
        .prop_map(move |(pairs, coin, probs)| {
            let mut b = GraphBuilder::new();
            for (i, (u, v)) in pairs.into_iter().enumerate() {
                if coin[i] < density {
                    b.add_edge(u, v, probs[i]).unwrap();
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parallel triangle enumeration returns the exact sequential output
    /// (order included) at every thread count.
    #[test]
    fn triangles_bit_identical(g in arb_graph(12, 0.7)) {
        let sequential = enumerate_triangles(&g);
        for threads in THREAD_COUNTS {
            let par = enumerate_triangles_with(&g, Parallelism::fixed(threads));
            prop_assert_eq!(&par, &sequential, "threads = {}", threads);
            let idx = TriangleIndex::build_with(&g, Parallelism::fixed(threads));
            prop_assert_eq!(idx.triangles(), TriangleIndex::build(&g).triangles());
        }
    }

    /// Parallel 4-clique enumeration (and counting) matches sequential
    /// exactly at every thread count.
    #[test]
    fn four_cliques_bit_identical(g in arb_graph(12, 0.7)) {
        let sequential = FourCliqueEnumerator::new(&g);
        for threads in THREAD_COUNTS {
            let par = FourCliqueEnumerator::with_parallelism(&g, Parallelism::fixed(threads));
            prop_assert_eq!(par.cliques(), sequential.cliques(), "threads = {}", threads);
            prop_assert_eq!(
                count_four_cliques_with(&g, Parallelism::fixed(threads)),
                count_four_cliques(&g)
            );
        }
    }

    /// The parallel support structure is bit-identical to the sequential
    /// one: triangles, clique records, reverse index and every probability
    /// down to the floating-point bit pattern.
    #[test]
    fn support_structure_bit_identical(g in arb_graph(10, 0.8)) {
        let sequential = SupportStructure::build(&g);
        for threads in THREAD_COUNTS {
            let par = SupportStructure::build_with(&g, Parallelism::fixed(threads));
            prop_assert_eq!(par.num_triangles(), sequential.num_triangles());
            prop_assert_eq!(par.num_cliques(), sequential.num_cliques());
            for t in 0..sequential.num_triangles() as u32 {
                prop_assert_eq!(par.triangle(t), sequential.triangle(t));
                prop_assert_eq!(
                    par.triangle_prob(t).to_bits(),
                    sequential.triangle_prob(t).to_bits()
                );
                prop_assert_eq!(par.cliques_of(t), sequential.cliques_of(t));
            }
            for c in 0..sequential.num_cliques() as u32 {
                let (a, b) = (par.clique(c), sequential.clique(c));
                prop_assert_eq!(a.clique, b.clique);
                prop_assert_eq!(a.triangles, b.triangles);
                for slot in 0..4 {
                    prop_assert_eq!(
                        a.completion_probs[slot].to_bits(),
                        b.completion_probs[slot].to_bits()
                    );
                }
            }
        }
    }

    /// End to end: the local decomposition computes identical nucleusness
    /// scores, method counts and peeling perf counters for every
    /// parallelism setting.
    #[test]
    fn local_decomposition_scores_identical(g in arb_graph(9, 0.8), theta in 0.05f64..0.9) {
        let sequential = LocalNucleusDecomposition::compute(
            &g,
            &LocalConfig::exact(theta).with_parallelism(Parallelism::Sequential),
        )
        .unwrap();
        for threads in THREAD_COUNTS {
            let par = LocalNucleusDecomposition::compute(
                &g,
                &LocalConfig::exact(theta).with_parallelism(Parallelism::fixed(threads)),
            )
            .unwrap();
            prop_assert_eq!(par.scores(), sequential.scores(), "threads = {}", threads);
            prop_assert_eq!(par.initial_scores(), sequential.initial_scores());
            prop_assert_eq!(par.method_counts(), sequential.method_counts());
            // PeelStats are deterministic perf counters: dp_calls and
            // friends must not depend on the thread count either.
            prop_assert_eq!(par.peel_stats(), sequential.peel_stats());
        }
    }

    /// The primitive itself: ordered merge equals a sequential pass for
    /// variable-size per-index output.
    #[test]
    fn par_extend_matches_sequential(n in 0usize..500, modulus in 1usize..5) {
        let body = |range: std::ops::Range<usize>, out: &mut Vec<usize>| {
            for i in range {
                for j in 0..(i % modulus) {
                    out.push(i * 100 + j);
                }
            }
        };
        let mut expected = Vec::new();
        body(0..n, &mut expected);
        for threads in THREAD_COUNTS {
            prop_assert_eq!(
                par_extend(Parallelism::fixed(threads), n, body),
                expected.clone(),
                "threads = {}",
                threads
            );
        }
        let mapped = par_map(Parallelism::fixed(8), n, |i| i * 3);
        prop_assert_eq!(mapped, (0..n).map(|i| i * 3).collect::<Vec<_>>());
    }
}
