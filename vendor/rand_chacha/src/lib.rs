//! Offline stand-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate, providing [`ChaCha8Rng`] — the only generator this workspace uses.
//!
//! This is a genuine ChaCha stream cipher with 8 double-rounds (RFC 8439
//! quarter-round schedule), seeded from a 32-byte key with a zero nonce.
//! It is deterministic across platforms, which is what the reproduction
//! needs; it makes no security claims.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A ChaCha random number generator with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Cipher state template: constants, key, counter, nonce.
    state: [u32; BLOCK_WORDS],
    /// Current keystream block.
    buffer: [u32; BLOCK_WORDS],
    /// Next unread word in `buffer`; `BLOCK_WORDS` means exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column round + diagonal round).
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            let mut bytes = [0u8; 4];
            bytes.copy_from_slice(&seed[i * 4..(i + 1) * 4]);
            state[4 + i] = u32::from_le_bytes(bytes);
        }
        // Counter and nonce start at zero.
        Self {
            state,
            buffer: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..10 {
            rng.next_u32();
        }
        let mut fork = rng.clone();
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), fork.next_u64());
        }
    }
}
