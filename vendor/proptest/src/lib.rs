//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! Implements the API subset this workspace's property tests use:
//! the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`,
//! range / tuple / [`strategy::Just`] / [`collection::vec`] strategies, the
//! [`proptest!`] test macro with `#![proptest_config(..)]`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` assertion macros.
//!
//! Differences from real proptest: generation is plain seeded sampling
//! (deterministic per test name) and failing cases are reported without
//! shrinking. Call sites are source-compatible with proptest 1.x.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value using `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms every generated value with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it — dependent generation.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Lengths accepted by [`fn@vec`]: a fixed `usize` or a range of sizes.
    pub trait IntoSizeRange {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length comes from `size` (a `usize` or a range).
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::SeedableRng;

    /// The RNG driving all generation: deterministic ChaCha8.
    pub type TestRng = rand_chacha::ChaCha8Rng;

    /// Per-test configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        /// 64 cases, overridable through the `PROPTEST_CASES` environment
        /// variable exactly like real proptest — CI's thorough job runs
        /// the same suites at `PROPTEST_CASES=1024`.
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse::<u32>().ok())
                .filter(|&c| c > 0)
                .unwrap_or(64);
            Self { cases }
        }
    }

    /// Builds the deterministic RNG for a named property test.
    pub fn rng_for(test_name: &str) -> TestRng {
        // FNV-1a over the test name keeps streams distinct across tests
        // while staying reproducible run to run.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(hash)
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines property tests, mirroring `proptest::proptest!`.
///
/// Each case generates fresh inputs from the given strategies and runs the
/// body; a panic (e.g. from [`prop_assert!`]) fails the test with the case
/// number in the message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::rng_for(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    )+
                    let run = ::std::panic::AssertUnwindSafe(|| { $body });
                    if let Err(panic) = ::std::panic::catch_unwind(run) {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed",
                            case + 1, config.cases, stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0.25f64..=0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..=0.75).contains(&y));
        }

        #[test]
        fn combinators_compose(v in (2usize..6).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0.0f64..1.0, n))
        }).prop_map(|(n, xs)| (n, xs))) {
            let (n, xs) = v;
            prop_assert_eq!(xs.len(), n);
            prop_assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn assume_skips_cases(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn default_config_honors_proptest_cases_env() {
        // No other test in this binary reads the variable (they all pass
        // explicit with_cases configs), so mutating it here is safe.
        std::env::set_var("PROPTEST_CASES", "7");
        assert_eq!(crate::test_runner::Config::default().cases, 7);
        std::env::set_var("PROPTEST_CASES", "not-a-number");
        assert_eq!(crate::test_runner::Config::default().cases, 64);
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(crate::test_runner::Config::default().cases, 64);
    }

    #[test]
    fn vec_with_fixed_len() {
        let mut rng = crate::test_runner::rng_for("vec_with_fixed_len");
        let strat = crate::collection::vec(0.0f64..1.0, 5usize);
        let v = Strategy::generate(&strat, &mut rng);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        let strat = 0u32..1000;
        let mut a = crate::test_runner::rng_for("t");
        let mut b = crate::test_runner::rng_for("t");
        for _ in 0..50 {
            assert_eq!(
                Strategy::generate(&strat, &mut a),
                Strategy::generate(&strat, &mut b)
            );
        }
    }
}
