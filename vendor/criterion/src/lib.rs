//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the API subset the workspace benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`],
//! [`criterion_group!`] and [`criterion_main!`] — with a simple
//! median-of-samples timer instead of criterion's statistical machinery.
//! Call sites are source-compatible with the real crate.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimization barrier.
pub use std::hint::black_box;

/// Identifier of a single benchmark: a function name plus an optional
/// parameter rendered as `name/param`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id of the form `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Timing loop handed to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, collecting one duration sample per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, iterations: u64, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        iterations,
    };
    f(&mut bencher);
    println!("{:<50} time: [{:?}]", id, bencher.median());
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Benchmarks `f` under `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.id), self.sample_size, f);
        self
    }

    /// Benchmarks `f`, passing `input` through to the closure.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group. (No-op here; criterion emits summary reports.)
    pub fn finish(self) {}
}

/// The benchmark driver. One instance is threaded through every
/// `criterion_group!` target function.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, self.sample_size, f);
        self
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routine_sample_size_times() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(7);
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 7);
    }

    #[test]
    fn benchmark_id_formats_name_and_parameter() {
        let id = BenchmarkId::new("DP/krogan", 0.3);
        assert_eq!(id.id, "DP/krogan/0.3");
        assert_eq!(BenchmarkId::from_parameter(42).id, "42");
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(1);
        let mut seen = 0.0f64;
        group.bench_with_input(BenchmarkId::new("f", 1), &1.5f64, |b, &x| {
            b.iter(|| seen = x)
        });
        group.finish();
        assert_eq!(seen, 1.5);
    }
}
