//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this repository has no network access, so the
//! workspace vendors a minimal, dependency-free implementation of exactly
//! the `rand` 0.8 API subset the code base uses: [`RngCore`], [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] and
//! [`seq::SliceRandom`].  The trait contracts match `rand` 0.8 so the real
//! crate can be dropped in later without touching call sites.

/// A source of uniformly distributed random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
///
/// Stand-in for `rand`'s `Standard: Distribution<T>` bound.
pub trait Standard {
    /// Draws a uniformly distributed value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision, like `rand`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from uniformly.
///
/// The element type is a trait parameter rather than an associated type so
/// that float-literal fallback resolves `rng.gen_range(0.15..0.85)` to
/// `f64`, matching `rand` 0.8's inference behaviour.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift reduction of a random word onto `[0, span)`, avoiding
/// modulo bias (Lemire's method without the rejection step; the residual
/// bias is < 2^-64 per draw, irrelevant for simulation workloads).
#[inline]
fn reduce(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + reduce(rng.next_u64(), span) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + reduce(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range` (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable RNG constructors, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed accepted by [`SeedableRng::from_seed`].
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64, then delegates to
    /// [`SeedableRng::from_seed`].
    ///
    /// NOTE: real `rand_core` 0.8 uses a PCG32-based expansion here, so
    /// seeded streams will differ if the vendored crates are swapped for
    /// the registry versions — re-baseline any recorded numbers then.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

/// Minimal `rand::rngs` namespace with a fast default generator.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256++ generator used as the in-tree `StdRng`
    /// stand-in. Not cryptographically secure.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    fn rng() -> rngs::SmallRng {
        rngs::SmallRng::seed_from_u64(42)
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = rng();
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = rng();
        for _ in 0..10_000 {
            let x = r.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&y));
            let z = r.gen_range(5usize..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = rngs::SmallRng::seed_from_u64(7);
        let mut b = rngs::SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn choose_and_shuffle_cover_slice() {
        let mut r = rng();
        let items = [1, 2, 3, 4];
        let picked = *items.choose(&mut r).unwrap();
        assert!(items.contains(&picked));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());

        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
