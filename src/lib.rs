//! # prob-nucleus-repro
//!
//! Umbrella crate of the reproduction of *"Nucleus Decomposition in
//! Probabilistic Graphs: Hardness and Algorithms"* (Esfahani, Srinivasan,
//! Thomo, Wu — ICDE 2022).  It re-exports the workspace crates so that the
//! examples and integration tests can use a single dependency:
//!
//! * [`ugraph`] — probabilistic graph substrate (representation, cliques,
//!   possible worlds, metrics, generators, I/O),
//! * [`detdecomp`] — deterministic k-core / k-truss / (3,4)-nucleus
//!   decompositions,
//! * [`probdecomp`] — probabilistic (k,η)-core and (k,γ)-truss baselines,
//! * [`nucleus`] — the paper's contribution: local (exact DP + statistical
//!   approximations), global and weakly-global nucleus decompositions,
//! * [`nd_datasets`] — synthetic emulations of the paper's datasets.
//!
//! ```
//! use prob_nucleus_repro::nucleus::{LocalConfig, LocalNucleusDecomposition};
//! use prob_nucleus_repro::ugraph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new();
//! for u in 0..5u32 {
//!     for v in (u + 1)..5u32 {
//!         b.add_edge(u, v, 0.9).unwrap();
//!     }
//! }
//! let graph = b.build();
//! let local = LocalNucleusDecomposition::compute(&graph, &LocalConfig::exact(0.2)).unwrap();
//! assert_eq!(local.max_score(), 2);
//! ```
//!
//! The facade refuses deprecated decomposition entry points: every caller
//! that goes through this crate is guaranteed to be on the fallible
//! `try_compute` / [`Decomposition::compute`] surface.

#![deny(deprecated)]

pub use detdecomp;
pub use nd_datasets;
pub use nucleus;
pub use probdecomp;
pub use ugraph;

/// Convenience re-export of the parallelism knob used across the
/// enumeration and decomposition entry points.
pub use ugraph::Parallelism;

/// Convenience re-exports of the unified (r,s)-decomposition surface: one
/// builder-style config and one engine covering the (k,η)-core, local
/// (k,γ)-truss and ℓ-nucleus decompositions plus their threshold sweeps.
pub use nucleus::{DecompConfig, DecompHandle, DecompSweep, Decomposition, Rank, RankSupport};
